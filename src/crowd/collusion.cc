#include "crowd/collusion.h"

#include "common/strings.h"

namespace rll::crowd {

Status AnnotateWithCollusion(data::Dataset* dataset,
                             const WorkerPool& honest_pool,
                             size_t honest_votes,
                             const CollusionOptions& options,
                             size_t colluder_votes, Rng* rng) {
  if (dataset->empty()) return Status::InvalidArgument("empty dataset");
  if (honest_votes > honest_pool.num_workers()) {
    return Status::InvalidArgument(
        StrFormat("honest_votes %zu exceeds pool of %zu", honest_votes,
                  honest_pool.num_workers()));
  }
  if (colluder_votes > options.num_colluders) {
    return Status::InvalidArgument(
        StrFormat("colluder_votes %zu exceeds ring of %zu", colluder_votes,
                  options.num_colluders));
  }
  if (honest_votes + colluder_votes == 0) {
    return Status::InvalidArgument("no votes requested");
  }
  if (options.follow_probability < 0.0 || options.follow_probability > 1.0 ||
      options.leader_accuracy < 0.0 || options.leader_accuracy > 1.0) {
    return Status::InvalidArgument("probabilities must lie in [0, 1]");
  }

  dataset->ClearAnnotations();
  const size_t colluder_base = honest_pool.num_workers();
  for (size_t i = 0; i < dataset->size(); ++i) {
    const double difficulty = rng->Beta(1.5, 2.5);
    if (honest_votes > 0) {
      for (size_t w : rng->SampleWithoutReplacement(
               honest_pool.num_workers(), honest_votes)) {
        dataset->AddAnnotation(
            i, {w, honest_pool.Vote(w, dataset->true_label(i), difficulty,
                                    rng)});
      }
    }
    if (colluder_votes > 0) {
      // One shared leader vote per item: correct with leader_accuracy.
      const int leader_vote = rng->Bernoulli(options.leader_accuracy)
                                  ? dataset->true_label(i)
                                  : 1 - dataset->true_label(i);
      for (size_t c : rng->SampleWithoutReplacement(options.num_colluders,
                                                    colluder_votes)) {
        int vote;
        if (rng->Bernoulli(options.follow_probability)) {
          vote = leader_vote;  // The ring moves in lockstep.
        } else {
          vote = rng->Bernoulli(options.leader_accuracy)
                     ? dataset->true_label(i)
                     : 1 - dataset->true_label(i);
        }
        dataset->AddAnnotation(i, {colluder_base + c, vote});
      }
    }
  }
  return Status::OK();
}

}  // namespace rll::crowd
