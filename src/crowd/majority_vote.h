// Majority vote — the baseline aggregator (and the label source the paper
// uses for its group-2 representation-learning baselines and plain RLL).

#ifndef RLL_CROWD_MAJORITY_VOTE_H_
#define RLL_CROWD_MAJORITY_VOTE_H_

#include "crowd/aggregator.h"

namespace rll::crowd {

class MajorityVote : public Aggregator {
 public:
  /// prob_positive is the raw vote fraction; ties resolve to 1.
  Result<AggregationResult> Run(const data::Dataset& dataset) const override;
  std::string name() const override { return "MajorityVote"; }
};

}  // namespace rll::crowd

#endif  // RLL_CROWD_MAJORITY_VOTE_H_
