// Label-confidence estimators — equations (1) and (2) of the paper.
//
// MLE:      δᵢ = Σⱼ yᵢⱼ / d                       (eq. 1)
// Bayesian: δᵢ = (α + Σⱼ yᵢⱼ) / (α + β + d)       (eq. 2)
//
// Following §IV-A, the Beta prior (α, β) is set from the label class prior:
// α/(α+β) equals the positive fraction of the (majority-vote) labels and
// α+β is a tunable prior strength.

#ifndef RLL_CROWD_CONFIDENCE_H_
#define RLL_CROWD_CONFIDENCE_H_

#include <utility>
#include <vector>

#include "data/dataset.h"

namespace rll::crowd {

enum class ConfidenceMode {
  /// Every example gets confidence 1 (plain RLL).
  kNone,
  /// Maximum-likelihood vote fraction, eq. (1).
  kMle,
  /// Beta-posterior mean, eq. (2).
  kBayesian,
  /// Extension (the paper's stated future work): posterior from the
  /// Dawid–Skene worker model — votes are weighted by each worker's
  /// estimated reliability instead of being counted equally.
  kWorkerAware,
};

const char* ConfidenceModeName(ConfidenceMode mode);

/// (α, β) matched to the class prior observed in the majority-vote labels:
/// α = prior·strength, β = (1−prior)·strength. Requires annotations.
std::pair<double, double> BetaPriorFromClassPrior(
    const data::Dataset& dataset, double prior_strength);

/// Per-example P(label = 1): vote fraction (kMle / kNone) or Beta-posterior
/// mean (kBayesian, using BetaPriorFromClassPrior). Requires annotations.
std::vector<double> LabelPositiveness(const data::Dataset& dataset,
                                      ConfidenceMode mode,
                                      double prior_strength = 2.0);

/// Confidence δᵢ of the *assigned* label: P(1) for examples labeled 1,
/// 1−P(1) for examples labeled 0. With kNone, all confidences are 1, which
/// reduces eq. (3) to the unweighted softmax — exactly plain RLL.
std::vector<double> LabelConfidence(const data::Dataset& dataset,
                                    const std::vector<int>& labels,
                                    ConfidenceMode mode,
                                    double prior_strength = 2.0);

}  // namespace rll::crowd

#endif  // RLL_CROWD_CONFIDENCE_H_
