#include "crowd/glad.h"

#include <cmath>

namespace rll::crowd {

namespace {

double StableSigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

Result<AggregationResult> Glad::Run(const data::Dataset& dataset) const {
  RLL_RETURN_IF_ERROR(CheckAnnotated(dataset));
  const size_t n = dataset.size();
  const size_t num_workers = dataset.NumWorkers();

  // Posterior P(z_i = 1), initialized from soft majority vote.
  std::vector<double> posterior(n);
  for (size_t i = 0; i < n; ++i) {
    posterior[i] = static_cast<double>(dataset.PositiveVotes(i)) /
                   static_cast<double>(dataset.annotations(i).size());
  }

  std::vector<double> alpha(num_workers, 1.0);  // Worker ability.
  std::vector<double> lambda(n, 0.0);           // log β_i (inverse difficulty).
  double prior_pos = 0.5;

  int iter = 0;
  bool converged = false;
  for (; iter < options_.max_em_iterations; ++iter) {
    // ---- M-step: gradient ascent on the expected complete log-likelihood.
    // For each vote, let t = P(vote is correct | posteriors); the gradient
    // through sigmoid(αβ) is (t − σ) scaled by the other factor.
    for (int step = 0; step < options_.m_step_iterations; ++step) {
      std::vector<double> grad_alpha(num_workers, 0.0);
      std::vector<double> grad_lambda(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const double beta = std::exp(lambda[i]);
        for (const data::Annotation& a : dataset.annotations(i)) {
          const double t = a.label == 1 ? posterior[i] : 1.0 - posterior[i];
          const double sigma = StableSigmoid(alpha[a.worker_id] * beta);
          const double common = t - sigma;
          grad_alpha[a.worker_id] += beta * common;
          grad_lambda[i] += alpha[a.worker_id] * common * beta;
        }
      }
      for (size_t w = 0; w < num_workers; ++w) {
        grad_alpha[w] -= options_.alpha_prior_precision * (alpha[w] - 1.0);
        alpha[w] += options_.m_step_learning_rate * grad_alpha[w];
      }
      for (size_t i = 0; i < n; ++i) {
        grad_lambda[i] -= options_.lambda_prior_precision * lambda[i];
        lambda[i] += options_.m_step_learning_rate * grad_lambda[i];
        // Clamp to keep exp() well-behaved.
        lambda[i] = std::min(std::max(lambda[i], -4.0), 4.0);
      }
    }

    // Class prior from current posteriors.
    double pos_mass = 0.0;
    for (double p : posterior) pos_mass += p;
    prior_pos = pos_mass / static_cast<double>(n);
    prior_pos = std::min(std::max(prior_pos, 1e-6), 1.0 - 1e-6);

    // ---- E-step: recompute posteriors.
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double beta = std::exp(lambda[i]);
      double log1 = std::log(prior_pos);
      double log0 = std::log(1.0 - prior_pos);
      for (const data::Annotation& a : dataset.annotations(i)) {
        const double sigma = StableSigmoid(alpha[a.worker_id] * beta);
        const double p_correct = std::min(std::max(sigma, 1e-12), 1.0 - 1e-12);
        if (a.label == 1) {
          log1 += std::log(p_correct);
          log0 += std::log(1.0 - p_correct);
        } else {
          log1 += std::log(1.0 - p_correct);
          log0 += std::log(p_correct);
        }
      }
      const double mx = std::max(log0, log1);
      const double z = std::exp(log0 - mx) + std::exp(log1 - mx);
      const double p1 = std::exp(log1 - mx) / z;
      max_delta = std::max(max_delta, std::fabs(p1 - posterior[i]));
      posterior[i] = p1;
    }
    if (max_delta < options_.tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }

  AggregationResult result;
  result.prob_positive = std::move(posterior);
  result.labels = HardLabels(result.prob_positive);
  result.worker_quality = std::move(alpha);
  result.item_difficulty.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Difficulty reported as 1/β as in the GLAD paper.
    result.item_difficulty[i] = std::exp(-lambda[i]);
  }
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace rll::crowd
