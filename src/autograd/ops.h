// Differentiable operations over ag::Var. Each op computes the forward value
// eagerly and registers a closure that propagates gradients to its parents.
// Ops only allocate a backward closure when some input requires gradients.

#ifndef RLL_AUTOGRAD_OPS_H_
#define RLL_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace rll::ag {

/// C = A·B.
Var Matmul(const Var& a, const Var& b);

/// Elementwise sum/difference/product (same shapes).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
/// Elementwise quotient a/b; |b| is clamped away from zero at eps
/// (sign-preserving) for numerical safety.
Var Div(const Var& a, const Var& b, double eps = 1e-12);

/// Scalar transforms.
Var Scale(const Var& a, double s);
Var AddScalar(const Var& a, double s);

/// Adds a 1×cols bias row to every row of a.
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Multiplies every row of a elementwise by a 1×cols row (e.g. a learned
/// gain vector); gradients flow into both operands.
Var MulRowBroadcast(const Var& a, const Var& row);

/// Replicates an n×1 column across `cols` columns → n×cols.
Var BroadcastCol(const Var& col, size_t cols);

/// Nonlinearities (elementwise).
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var Sigmoid(const Var& a);
/// log(max(a, eps)) — inputs are clamped for stability.
Var Log(const Var& a, double eps = 1e-12);
Var Exp(const Var& a);
Var Square(const Var& a);
/// sqrt(max(a, eps)).
Var Sqrt(const Var& a, double eps = 1e-12);
/// |a| (subgradient 0 at the kink).
Var Abs(const Var& a);
/// max(a, floor) elementwise; gradient passes only where a > floor.
Var ClampMin(const Var& a, double floor);

/// Full reductions → 1×1.
Var Sum(const Var& a);
Var Mean(const Var& a);

/// Row reduction → rows×1.
Var RowSum(const Var& a);

/// Row-wise cosine similarity → rows×1; norms clamped at eps.
Var RowCosine(const Var& a, const Var& b, double eps = 1e-12);

/// Horizontal concatenation (equal row counts) → rows×Σcols. The VarList
/// overload is the hot-path form (scratch-backed operand lists); the
/// std::vector form is a thin wrapper for existing call sites.
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatCols(const VarList& parts);

/// Vertical concatenation (equal col counts) → Σrows×cols.
Var ConcatRows(const std::vector<Var>& parts);
Var ConcatRows(const VarList& parts);

/// Numerically stable row-wise log-softmax.
Var LogSoftmaxRows(const Var& a);

/// Mean negative log likelihood: -(1/n)·Σᵢ logp(i, targets[i]) → 1×1.
/// `logp` is n×c log-probabilities (e.g. from LogSoftmaxRows).
Var NllRows(const Var& logp, const std::vector<size_t>& targets);
/// Pointer form for hot paths: unit weights, `count` targets, no
/// per-call std::vector construction (the backward closure copies the
/// targets into scratch storage).
Var NllRows(const Var& logp, const size_t* targets, size_t count);

/// Per-example weighted mean NLL: -(Σᵢ wᵢ·logp(i,tᵢ))/Σᵢwᵢ → 1×1.
Var WeightedNllRows(const Var& logp, const std::vector<size_t>& targets,
                    const std::vector<double>& weights);
/// Pointer form; `weights == nullptr` means unit weights.
Var WeightedNllRows(const Var& logp, const size_t* targets,
                    const double* weights, size_t count);

}  // namespace rll::ag

#endif  // RLL_AUTOGRAD_OPS_H_
