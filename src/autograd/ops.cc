#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "common/finite_check.h"
#include "tensor/ops.h"

namespace rll::ag {

namespace {

/// Builds a result node wired to its parents; the backward closure is only
/// materialized (into scratch storage, via BackwardFn) when gradients are
/// needed. allocate_shared draws the node + control block from the same
/// scratch allocator, so an op inside an ArenaScope is allocation-free.
template <typename F>
Var MakeOp(Matrix value, VarList parents, F&& backward) {
  // Every autograd op funnels through here: a NaN/Inf forward value aborts
  // (debug builds) at the op that produced it.
  RLL_DCHECK_FINITE(value);
  bool needs_grad = false;
  for (const Var& p : parents) needs_grad = needs_grad || p->requires_grad;
  Var out = std::allocate_shared<Node>(ScratchAllocator<Node>{},
                                       std::move(value), needs_grad);
  out->parents = std::move(parents);
  if (needs_grad) out->backward_fn = BackwardFn(std::forward<F>(backward));
  return out;
}

}  // namespace

Var Matmul(const Var& a, const Var& b) {
  Matrix value = rll::Matmul(a->value, b->value);
  return MakeOp(std::move(value), {a, b}, [](Node* n) {
    const Var& a = n->parents[0];
    const Var& b = n->parents[1];
    if (a->requires_grad)
      a->AccumulateGrad(MatmulTransposeB(n->grad, b->value));
    if (b->requires_grad)
      b->AccumulateGrad(MatmulTransposeA(a->value, n->grad));
  });
}

Var Add(const Var& a, const Var& b) {
  return MakeOp(rll::Add(a->value, b->value), {a, b}, [](Node* n) {
    for (int i = 0; i < 2; ++i) {
      if (n->parents[i]->requires_grad) n->parents[i]->AccumulateGrad(n->grad);
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(rll::Sub(a->value, b->value), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumulateGrad(n->grad);
    if (n->parents[1]->requires_grad)
      n->parents[1]->AccumulateGrad(rll::Scale(n->grad, -1.0));
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(Hadamard(a->value, b->value), {a, b}, [](Node* n) {
    const Var& a = n->parents[0];
    const Var& b = n->parents[1];
    if (a->requires_grad) a->AccumulateGrad(Hadamard(n->grad, b->value));
    if (b->requires_grad) b->AccumulateGrad(Hadamard(n->grad, a->value));
  });
}

Var Div(const Var& a, const Var& b, double eps) {
  RLL_CHECK(a->value.SameShape(b->value));
  auto safe = [eps](double d) {
    if (d >= 0.0) return std::max(d, eps);
    return std::min(d, -eps);
  };
  Matrix value(a->value.rows(), a->value.cols());
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = a->value[i] / safe(b->value[i]);
  }
  return MakeOp(std::move(value), {a, b}, [safe](Node* n) {
    const Var& a = n->parents[0];
    const Var& b = n->parents[1];
    if (a->requires_grad) {
      Matrix ga(n->grad.rows(), n->grad.cols());
      for (size_t i = 0; i < ga.size(); ++i) {
        ga[i] = n->grad[i] / safe(b->value[i]);
      }
      a->AccumulateGrad(std::move(ga));
    }
    if (b->requires_grad) {
      Matrix gb(n->grad.rows(), n->grad.cols());
      for (size_t i = 0; i < gb.size(); ++i) {
        const double d = safe(b->value[i]);
        gb[i] = -n->grad[i] * a->value[i] / (d * d);
      }
      RLL_DCHECK_FINITE(gb);
      b->AccumulateGrad(std::move(gb));
    }
  });
}

Var Scale(const Var& a, double s) {
  return MakeOp(rll::Scale(a->value, s), {a}, [s](Node* n) {
    n->parents[0]->AccumulateGrad(rll::Scale(n->grad, s));
  });
}

Var AddScalar(const Var& a, double s) {
  return MakeOp(rll::AddScalar(a->value, s), {a}, [](Node* n) {
    n->parents[0]->AccumulateGrad(n->grad);
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  return MakeOp(rll::AddRowBroadcast(a->value, bias->value), {a, bias},
                [](Node* n) {
                  if (n->parents[0]->requires_grad)
                    n->parents[0]->AccumulateGrad(n->grad);
                  if (n->parents[1]->requires_grad)
                    n->parents[1]->AccumulateGrad(ColSum(n->grad));
                });
}

Var MulRowBroadcast(const Var& a, const Var& row) {
  return MakeOp(rll::MulRowBroadcast(a->value, row->value), {a, row},
                [](Node* n) {
                  const Var& a = n->parents[0];
                  const Var& row = n->parents[1];
                  if (a->requires_grad) {
                    a->AccumulateGrad(
                        rll::MulRowBroadcast(n->grad, row->value));
                  }
                  if (row->requires_grad) {
                    row->AccumulateGrad(
                        ColSum(Hadamard(n->grad, a->value)));
                  }
                });
}

Var BroadcastCol(const Var& col, size_t cols) {
  RLL_CHECK_EQ(col->value.cols(), 1u);
  RLL_CHECK_GT(cols, 0u);
  Matrix value(col->value.rows(), cols);
  for (size_t r = 0; r < value.rows(); ++r) {
    const double v = col->value(r, 0);
    double* row = value.row_data(r);
    for (size_t c = 0; c < cols; ++c) row[c] = v;
  }
  return MakeOp(std::move(value), {col}, [](Node* n) {
    n->parents[0]->AccumulateGrad(rll::RowSum(n->grad));
  });
}

Var Tanh(const Var& a) {
  Matrix value = Map(a->value, [](double x) { return std::tanh(x); });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      const double y = n->value[i];
      g[i] = n->grad[i] * (1.0 - y * y);
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Relu(const Var& a) {
  Matrix value = Map(a->value, [](double x) { return x > 0.0 ? x : 0.0; });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] = x[i] > 0.0 ? n->grad[i] : 0.0;
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Sigmoid(const Var& a) {
  Matrix value = Map(a->value, [](double x) {
    // Branch on sign for numerical stability at large |x|.
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    const double e = std::exp(x);
    return e / (1.0 + e);
  });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      const double y = n->value[i];
      g[i] = n->grad[i] * y * (1.0 - y);
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Log(const Var& a, double eps) {
  Matrix value =
      Map(a->value, [eps](double x) { return std::log(std::max(x, eps)); });
  return MakeOp(std::move(value), {a}, [eps](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] = n->grad[i] / std::max(x[i], eps);
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Exp(const Var& a) {
  Matrix value = Map(a->value, [](double x) { return std::exp(x); });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    n->parents[0]->AccumulateGrad(Hadamard(n->grad, n->value));
  });
}

Var Square(const Var& a) {
  Matrix value = Map(a->value, [](double x) { return x * x; });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) g[i] = 2.0 * x[i] * n->grad[i];
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Sqrt(const Var& a, double eps) {
  Matrix value =
      Map(a->value, [eps](double x) { return std::sqrt(std::max(x, eps)); });
  return MakeOp(std::move(value), {a}, [eps](Node* n) {
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] = n->grad[i] * 0.5 / std::max(n->value[i], std::sqrt(eps));
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Abs(const Var& a) {
  Matrix value = Map(a->value, [](double x) { return std::fabs(x); });
  return MakeOp(std::move(value), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] = x[i] > 0.0 ? n->grad[i] : (x[i] < 0.0 ? -n->grad[i] : 0.0);
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var ClampMin(const Var& a, double floor) {
  Matrix value =
      Map(a->value, [floor](double x) { return std::max(x, floor); });
  return MakeOp(std::move(value), {a}, [floor](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(n->grad.rows(), n->grad.cols());
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] = x[i] > floor ? n->grad[i] : 0.0;
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var Sum(const Var& a) {
  Matrix value(1, 1, rll::Sum(a->value));
  return MakeOp(std::move(value), {a}, [](Node* n) {
    const double g = n->grad(0, 0);
    const Matrix& x = n->parents[0]->value;
    n->parents[0]->AccumulateGrad(Matrix(x.rows(), x.cols(), g));
  });
}

Var Mean(const Var& a) {
  RLL_CHECK_GT(a->value.size(), 0u);
  Matrix value(1, 1, rll::Mean(a->value));
  return MakeOp(std::move(value), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    const double g = n->grad(0, 0) / static_cast<double>(x.size());
    n->parents[0]->AccumulateGrad(Matrix(x.rows(), x.cols(), g));
  });
}

Var RowSum(const Var& a) {
  return MakeOp(rll::RowSum(a->value), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix g(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      const double gr = n->grad(r, 0);
      double* row = g.row_data(r);
      for (size_t c = 0; c < x.cols(); ++c) row[c] = gr;
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var RowCosine(const Var& a, const Var& b, double eps) {
  return MakeOp(
      rll::RowCosine(a->value, b->value, eps), {a, b}, [eps](Node* n) {
        const Var& a = n->parents[0];
        const Var& b = n->parents[1];
        const Matrix& av = a->value;
        const Matrix& bv = b->value;
        Matrix ga(av.rows(), av.cols());
        Matrix gb(bv.rows(), bv.cols());
        for (size_t r = 0; r < av.rows(); ++r) {
          const double* ar = av.row_data(r);
          const double* br = bv.row_data(r);
          double dot = 0.0, na2 = 0.0, nb2 = 0.0;
          for (size_t c = 0; c < av.cols(); ++c) {
            dot += ar[c] * br[c];
            na2 += ar[c] * ar[c];
            nb2 += br[c] * br[c];
          }
          const double na = std::max(std::sqrt(na2), eps);
          const double nb = std::max(std::sqrt(nb2), eps);
          const double cosv = dot / (na * nb);
          const double g = n->grad(r, 0);
          // d cos / d a = b/(|a||b|) − cos·a/|a|²  (and symmetrically for b).
          double* gar = ga.row_data(r);
          double* gbr = gb.row_data(r);
          for (size_t c = 0; c < av.cols(); ++c) {
            gar[c] = g * (br[c] / (na * nb) - cosv * ar[c] / (na * na));
            gbr[c] = g * (ar[c] / (na * nb) - cosv * br[c] / (nb * nb));
          }
        }
        RLL_DCHECK_FINITE(ga);
        RLL_DCHECK_FINITE(gb);
        if (a->requires_grad) a->AccumulateGrad(std::move(ga));
        if (b->requires_grad) b->AccumulateGrad(std::move(gb));
      });
}

namespace {

// Pointer-based core shared by the std::vector and VarList overloads.
Var ConcatColsImpl(const Var* parts, size_t count) {
  RLL_CHECK(count > 0);
  const size_t rows = parts[0]->value.rows();
  size_t total_cols = 0;
  for (size_t i = 0; i < count; ++i) {
    RLL_CHECK_EQ(parts[i]->value.rows(), rows);
    total_cols += parts[i]->value.cols();
  }
  Matrix value(rows, total_cols);
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    const Var& p = parts[i];
    for (size_t r = 0; r < rows; ++r) {
      const double* src = p->value.row_data(r);
      double* dst = value.row_data(r) + offset;
      for (size_t c = 0; c < p->value.cols(); ++c) dst[c] = src[c];
    }
    offset += p->value.cols();
  }
  return MakeOp(std::move(value), VarList(parts, parts + count), [](Node* n) {
    size_t offset = 0;
    for (const Var& p : n->parents) {
      const size_t pc = p->value.cols();
      if (p->requires_grad) {
        Matrix g(p->value.rows(), pc);
        for (size_t r = 0; r < g.rows(); ++r) {
          const double* src = n->grad.row_data(r) + offset;
          double* dst = g.row_data(r);
          for (size_t c = 0; c < pc; ++c) dst[c] = src[c];
        }
        p->AccumulateGrad(std::move(g));
      }
      offset += pc;
    }
  });
}

Var ConcatRowsImpl(const Var* parts, size_t count) {
  RLL_CHECK(count > 0);
  const size_t cols = parts[0]->value.cols();
  size_t total_rows = 0;
  for (size_t i = 0; i < count; ++i) {
    RLL_CHECK_EQ(parts[i]->value.cols(), cols);
    total_rows += parts[i]->value.rows();
  }
  Matrix value(total_rows, cols);
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    const Var& p = parts[i];
    for (size_t r = 0; r < p->value.rows(); ++r) {
      const double* src = p->value.row_data(r);
      double* dst = value.row_data(offset + r);
      for (size_t c = 0; c < cols; ++c) dst[c] = src[c];
    }
    offset += p->value.rows();
  }
  return MakeOp(std::move(value), VarList(parts, parts + count), [](Node* n) {
    size_t offset = 0;
    for (const Var& p : n->parents) {
      const size_t pr = p->value.rows();
      if (p->requires_grad) {
        Matrix g(pr, p->value.cols());
        for (size_t r = 0; r < pr; ++r) {
          const double* src = n->grad.row_data(offset + r);
          double* dst = g.row_data(r);
          for (size_t c = 0; c < g.cols(); ++c) dst[c] = src[c];
        }
        p->AccumulateGrad(std::move(g));
      }
      offset += pr;
    }
  });
}

}  // namespace

Var ConcatCols(const std::vector<Var>& parts) {
  return ConcatColsImpl(parts.data(), parts.size());
}
Var ConcatCols(const VarList& parts) {
  return ConcatColsImpl(parts.data(), parts.size());
}
Var ConcatRows(const std::vector<Var>& parts) {
  return ConcatRowsImpl(parts.data(), parts.size());
}
Var ConcatRows(const VarList& parts) {
  return ConcatRowsImpl(parts.data(), parts.size());
}

Var LogSoftmaxRows(const Var& a) {
  const Matrix lse = LogSumExpRows(a->value);
  Matrix value = a->value;
  for (size_t r = 0; r < value.rows(); ++r) {
    double* row = value.row_data(r);
    for (size_t c = 0; c < value.cols(); ++c) row[c] -= lse(r, 0);
  }
  return MakeOp(std::move(value), {a}, [](Node* n) {
    // dx = dy − softmax(x) · rowsum(dy); softmax(x) = exp(logsoftmax).
    const Matrix& y = n->value;
    const Matrix& dy = n->grad;
    Matrix g(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      const double* yr = y.row_data(r);
      const double* dyr = dy.row_data(r);
      double* gr = g.row_data(r);
      double dsum = 0.0;
      for (size_t c = 0; c < y.cols(); ++c) dsum += dyr[c];
      for (size_t c = 0; c < y.cols(); ++c) {
        gr[c] = dyr[c] - std::exp(yr[c]) * dsum;
      }
    }
    n->parents[0]->AccumulateGrad(std::move(g));
  });
}

Var NllRows(const Var& logp, const std::vector<size_t>& targets) {
  return WeightedNllRows(logp, targets.data(), /*weights=*/nullptr,
                         targets.size());
}

Var NllRows(const Var& logp, const size_t* targets, size_t count) {
  return WeightedNllRows(logp, targets, /*weights=*/nullptr, count);
}

Var WeightedNllRows(const Var& logp, const std::vector<size_t>& targets,
                    const std::vector<double>& weights) {
  RLL_CHECK_EQ(targets.size(), weights.size());
  return WeightedNllRows(logp, targets.data(), weights.data(),
                         targets.size());
}

Var WeightedNllRows(const Var& logp, const size_t* targets,
                    const double* weights, size_t count) {
  RLL_CHECK_EQ(logp->value.rows(), count);
  RLL_CHECK(count > 0);
  double wsum = 0.0;
  if (weights != nullptr) {
    for (size_t i = 0; i < count; ++i) {
      RLL_CHECK_GE(weights[i], 0.0);
      wsum += weights[i];
    }
  } else {
    wsum = static_cast<double>(count);
  }
  RLL_CHECK_GT(wsum, 0.0);
  double loss = 0.0;
  for (size_t i = 0; i < count; ++i) {
    RLL_CHECK_LT(targets[i], logp->value.cols());
    const double w = weights != nullptr ? weights[i] : 1.0;
    loss -= w * logp->value(i, targets[i]);
  }
  Matrix value(1, 1, loss / wsum);
  // The closure copies targets/weights into scratch vectors: inside an
  // ArenaScope both the copies and the closure itself are arena-backed.
  ScratchVector<size_t> targets_copy(targets, targets + count);
  ScratchVector<double> weights_copy;
  if (weights != nullptr) weights_copy.assign(weights, weights + count);
  return MakeOp(
      std::move(value), {logp},
      [targets = std::move(targets_copy), weights = std::move(weights_copy),
       wsum](Node* n) {
        const double g = n->grad(0, 0);
        const Matrix& lp = n->parents[0]->value;
        Matrix grad(lp.rows(), lp.cols());
        for (size_t i = 0; i < targets.size(); ++i) {
          const double w = weights.empty() ? 1.0 : weights[i];
          grad(i, targets[i]) = -g * w / wsum;
        }
        n->parents[0]->AccumulateGrad(std::move(grad));
      });
}

}  // namespace rll::ag
