#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "common/finite_check.h"

namespace rll::ag {

Node::~Node() {
  // Move the parent list out, then drain it with an explicit stack. Any
  // node we hold the last reference to gets its own parents stolen before
  // its (now shallow) destructor runs, so destruction never recurses
  // deeper than one node regardless of graph depth.
  std::vector<Var> pending = std::move(parents);
  while (!pending.empty()) {
    Var node = std::move(pending.back());
    pending.pop_back();
    if (node.use_count() == 1) {
      for (Var& parent : node->parents) {
        pending.push_back(std::move(parent));
      }
      node->parents.clear();
    }
  }
}

void Node::AccumulateGrad(Matrix g) {
  RLL_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  // Gradients enter every node through here, so a NaN produced by any
  // backward_fn is caught while the producing op is still on the stack.
  RLL_DCHECK_FINITE(g);
  if (grad.empty()) {
    grad = std::move(g);
  } else {
    grad += g;
  }
}

Var Constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var Parameter(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

std::vector<Node*> TopologicalOrder(const Var& root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Iterative post-order DFS; graphs from long training loops can be deep
  // enough to overflow the stack with recursion.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // Parents precede children.
}

void Backward(const Var& loss) {
  RLL_CHECK_MSG(loss->value.rows() == 1 && loss->value.cols() == 1,
                "Backward requires a 1x1 scalar loss");
  std::vector<Node*> order = TopologicalOrder(loss);
  loss->AccumulateGrad(Matrix(1, 1, 1.0));
  // Children before parents: walk in reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad && !node->grad.empty()) {
      node->backward_fn(node);
    }
  }
}

}  // namespace rll::ag
