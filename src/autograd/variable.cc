#include "autograd/variable.h"

#include <atomic>
#include <utility>

#include "common/finite_check.h"

namespace rll::ag {

namespace {

// Visit epochs for TopologicalOrder. Atomic so concurrent walks over
// distinct (thread-private) graphs each get a unique epoch; starts at 1 so
// the zero-initialized Node::visit_epoch never reads as already-visited.
std::atomic<uint64_t> g_visit_epoch{0};

uint64_t NextVisitEpoch() {
  return g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Node::~Node() {
  // Move the parent list out, then drain it with an explicit stack. Any
  // node we hold the last reference to gets its own parents stolen before
  // its (now shallow) destructor runs, so destruction never recurses
  // deeper than one node regardless of graph depth.
  VarList pending = std::move(parents);
  while (!pending.empty()) {
    Var node = std::move(pending.back());
    pending.pop_back();
    if (node.use_count() == 1) {
      for (Var& parent : node->parents) {
        pending.push_back(std::move(parent));
      }
      node->parents.clear();
    }
  }
}

void Node::AccumulateGrad(Matrix g) {
  RLL_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  // Gradients enter every node through here, so a NaN produced by any
  // backward_fn is caught while the producing op is still on the stack.
  RLL_DCHECK_FINITE(g);
  if (grad.empty()) {
    grad = std::move(g);
  } else {
    grad += g;
  }
}

Var Constant(Matrix value) {
  // allocate_shared: node and shared_ptr control block come from one
  // scratch allocation — inside an ArenaScope, building a leaf is a bump.
  return std::allocate_shared<Node>(ScratchAllocator<Node>{},
                                    std::move(value),
                                    /*requires_grad=*/false);
}

Var Parameter(Matrix value) {
  return std::allocate_shared<Node>(ScratchAllocator<Node>{},
                                    std::move(value),
                                    /*requires_grad=*/true);
}

ScratchVector<Node*> TopologicalOrder(const Var& root) {
  const uint64_t epoch = NextVisitEpoch();
  ScratchVector<Node*> order;
  // Iterative post-order DFS; graphs from long training loops can be deep
  // enough to overflow the stack with recursion.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  ScratchVector<Frame> stack;
  root->visit_epoch = epoch;
  stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->visit_epoch != epoch) {
        parent->visit_epoch = epoch;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // Parents precede children.
}

void Backward(const Var& loss) {
  RLL_CHECK_MSG(loss->value.rows() == 1 && loss->value.cols() == 1,
                "Backward requires a 1x1 scalar loss");
  ScratchVector<Node*> order = TopologicalOrder(loss);
  loss->AccumulateGrad(Matrix(1, 1, 1.0));
  // Children before parents: walk in reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad && !node->grad.empty()) {
      node->backward_fn(node);
    }
  }
}

}  // namespace rll::ag
