#include "autograd/variable.h"

#include <unordered_set>

namespace rll::ag {

void Node::AccumulateGrad(const Matrix& g) {
  RLL_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty()) {
    grad = g;
  } else {
    grad += g;
  }
}

Var Constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var Parameter(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

std::vector<Node*> TopologicalOrder(const Var& root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Iterative post-order DFS; graphs from long training loops can be deep
  // enough to overflow the stack with recursion.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // Parents precede children.
}

void Backward(const Var& loss) {
  RLL_CHECK_MSG(loss->value.rows() == 1 && loss->value.cols() == 1,
                "Backward requires a 1x1 scalar loss");
  std::vector<Node*> order = TopologicalOrder(loss);
  loss->AccumulateGrad(Matrix(1, 1, 1.0));
  // Children before parents: walk in reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad && !node->grad.empty()) {
      node->backward_fn(node);
    }
  }
}

}  // namespace rll::ag
