// Finite-difference gradient verification for autograd ops and composite
// losses. Used by the test suite; also handy when adding new ops.

#ifndef RLL_AUTOGRAD_GRADCHECK_H_
#define RLL_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace rll::ag {

struct GradCheckResult {
  /// Largest |analytic − numeric| / max(1, |numeric|) over all parameters.
  double max_relative_error = 0.0;
  /// Where it occurred (parameter index, flat element index).
  size_t worst_param = 0;
  size_t worst_element = 0;
};

/// Compares backprop gradients with central finite differences.
///
/// `forward` must rebuild the graph from the current parameter values and
/// return a 1×1 scalar loss; it is re-invoked with perturbed parameters.
GradCheckResult CheckGradients(const std::vector<Var>& params,
                               const std::function<Var()>& forward,
                               double eps = 1e-6);

}  // namespace rll::ag

#endif  // RLL_AUTOGRAD_GRADCHECK_H_
