#include "autograd/gradcheck.h"

#include <cmath>

namespace rll::ag {

GradCheckResult CheckGradients(const std::vector<Var>& params,
                               const std::function<Var()>& forward,
                               double eps) {
  // Analytic pass.
  for (const Var& p : params) p->ZeroGrad();
  Var loss = forward();
  Backward(loss);
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const Var& p : params) {
    analytic.push_back(p->grad.empty()
                           ? Matrix(p->value.rows(), p->value.cols())
                           : p->grad);
  }

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var p = params[pi];
    for (size_t i = 0; i < p->value.size(); ++i) {
      const double original = p->value[i];
      p->value[i] = original + eps;
      const double up = forward()->value(0, 0);
      p->value[i] = original - eps;
      const double down = forward()->value(0, 0);
      p->value[i] = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double err = std::fabs(analytic[pi][i] - numeric) /
                         std::max(1.0, std::fabs(numeric));
      if (err > result.max_relative_error) {
        result.max_relative_error = err;
        result.worst_param = pi;
        result.worst_element = i;
      }
    }
  }
  return result;
}

}  // namespace rll::ag
