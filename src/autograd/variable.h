// Dynamic reverse-mode automatic differentiation over matrices.
//
// A computation builds a DAG of Node objects (shared_ptr-owned); Backward()
// topologically sorts the graph from a scalar loss and accumulates gradients
// into every node with requires_grad. The graph is rebuilt on every forward
// pass (define-by-run), which keeps control flow — like RLL's per-group
// candidate lists — ordinary C++.
//
// Memory plane: every piece of per-graph storage — the Node itself (via
// std::allocate_shared), its parent list, its gradient matrices, and the
// type-erased backward closure — is obtained through ScratchAllocator, so
// a graph built inside an ArenaScope (the trainer opens one per batch)
// costs pointer bumps and is reclaimed wholesale by Arena::Reset().
// Outside a scope the allocator degrades to the aligned heap and nothing
// changes semantically. One rule follows: a graph built inside a scope
// must be dropped before the arena is reset (see common/arena.h).
//
// Graphs are thread-private: build, walk, and drop a graph on one thread.
// (Distinct threads may each run their own graphs concurrently — the
// visit-epoch counter used by TopologicalOrder is atomic, and nodes are
// never shared across graphs.)

#ifndef RLL_AUTOGRAD_VARIABLE_H_
#define RLL_AUTOGRAD_VARIABLE_H_

#include <memory>
#include <new>  // rll-lint: allow(naked-new-delete) — placement new below
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "tensor/matrix.h"

namespace rll::ag {

class Node;
/// Handle type used by all autograd ops.
using Var = std::shared_ptr<Node>;
/// Parent/operand lists; scratch-backed like everything else per-graph.
using VarList = ScratchVector<Var>;

/// Move-only type-erased `void(Node*)` callable for backward closures.
/// Unlike std::function (whose small-buffer optimization tops out around
/// two pointers, sending every capturing autograd closure to the heap),
/// this always stores the closure through ScratchAllocator — so inside an
/// ArenaScope a closure capturing index lists or matrices still costs a
/// pointer bump.
class BackwardFn {
 public:
  BackwardFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn>>>
  BackwardFn(F&& fn) {  // NOLINT(runtime/explicit)
    using Closure = std::decay_t<F>;
    static_assert(alignof(Closure) <= Arena::kAlignment,
                  "closure over-aligned for scratch storage");
    bytes_ = sizeof(Closure);
    data_ = ScratchAllocator<unsigned char>{}.allocate(bytes_);
    new (data_) Closure(std::forward<F>(fn));  // rll-lint: allow(naked-new-delete)
    call_ = [](void* data, Node* node) {
      (*static_cast<Closure*>(data))(node);
    };
    destroy_ = [](void* data) { static_cast<Closure*>(data)->~Closure(); };
  }

  BackwardFn(BackwardFn&& other) noexcept
      : data_(other.data_), call_(other.call_), destroy_(other.destroy_),
        bytes_(other.bytes_) {
    other.data_ = nullptr;
    other.call_ = nullptr;
    other.destroy_ = nullptr;
  }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      call_ = other.call_;
      destroy_ = other.destroy_;
      bytes_ = other.bytes_;
      other.data_ = nullptr;
      other.call_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { Release(); }

  explicit operator bool() const { return call_ != nullptr; }
  void operator()(Node* node) const { call_(data_, node); }

 private:
  void Release() {
    if (data_ == nullptr) return;
    destroy_(data_);
    ScratchAllocator<unsigned char>{}.deallocate(
        static_cast<unsigned char*>(data_), bytes_);
    data_ = nullptr;
    call_ = nullptr;
    destroy_ = nullptr;
  }

  void* data_ = nullptr;
  void (*call_)(void*, Node*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  size_t bytes_ = 0;
};

class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  // Destroying the head of a long op chain must not recurse node-by-node
  // through shared_ptr parents — a 20k-op training graph overflows the
  // stack that way (caught by the asan-ubsan build, where stack frames are
  // large enough to trip it). Tear the chain down iteratively instead.
  ~Node();

  /// Forward value.
  Matrix value;
  /// Accumulated gradient dLoss/dvalue; empty until first accumulation.
  Matrix grad;
  /// Whether gradients should flow into (and through) this node.
  bool requires_grad;
  /// Last TopologicalOrder sweep that visited this node. Replaces a
  /// per-walk unordered_set (and its per-node rehash allocations): each
  /// sweep draws a fresh epoch from a global atomic counter, so stale
  /// marks from earlier sweeps can never read as "visited".
  uint64_t visit_epoch = 0;
  /// Upstream nodes; drives the topological sort.
  VarList parents;
  /// Propagates this->grad into parents' grads. Null for leaves and for
  /// nodes with requires_grad == false.
  BackwardFn backward_fn;

  /// Adds g into grad. Taken by value: the first accumulation into a node
  /// (the common case — most nodes have a single consumer) moves the
  /// incoming matrix into place instead of copying it.
  void AccumulateGrad(Matrix g);

  /// Clears the gradient (keeps allocation semantics simple: resets to
  /// empty, reallocated on next accumulation).
  void ZeroGrad() { grad = Matrix(); }

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }
};

/// Creates a leaf holding `value`. Constants have requires_grad == false.
Var Constant(Matrix value);

/// Creates a trainable leaf (gradient target).
Var Parameter(Matrix value);

/// Runs backpropagation from a 1×1 scalar `loss`, seeding dloss/dloss = 1.
/// Gradients accumulate — callers zero parameter grads between steps.
void Backward(const Var& loss);

/// Collects every distinct node reachable from `root` in topological order
/// (parents before children). Exposed for testing.
ScratchVector<Node*> TopologicalOrder(const Var& root);

}  // namespace rll::ag

#endif  // RLL_AUTOGRAD_VARIABLE_H_
