// Dynamic reverse-mode automatic differentiation over matrices.
//
// A computation builds a DAG of Node objects (shared_ptr-owned); Backward()
// topologically sorts the graph from a scalar loss and accumulates gradients
// into every node with requires_grad. The graph is rebuilt on every forward
// pass (define-by-run), which keeps control flow — like RLL's per-group
// candidate lists — ordinary C++.

#ifndef RLL_AUTOGRAD_VARIABLE_H_
#define RLL_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace rll::ag {

class Node;
/// Handle type used by all autograd ops.
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  // Destroying the head of a long op chain must not recurse node-by-node
  // through shared_ptr parents — a 20k-op training graph overflows the
  // stack that way (caught by the asan-ubsan build, where stack frames are
  // large enough to trip it). Tear the chain down iteratively instead.
  ~Node();

  /// Forward value.
  Matrix value;
  /// Accumulated gradient dLoss/dvalue; empty until first accumulation.
  Matrix grad;
  /// Whether gradients should flow into (and through) this node.
  bool requires_grad;
  /// Upstream nodes; drives the topological sort.
  std::vector<Var> parents;
  /// Propagates this->grad into parents' grads. Null for leaves and for
  /// nodes with requires_grad == false.
  std::function<void(Node*)> backward_fn;

  /// Adds g into grad. Taken by value: the first accumulation into a node
  /// (the common case — most nodes have a single consumer) moves the
  /// incoming matrix into place instead of copying it.
  void AccumulateGrad(Matrix g);

  /// Clears the gradient (keeps allocation semantics simple: resets to
  /// empty, reallocated on next accumulation).
  void ZeroGrad() { grad = Matrix(); }

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }
};

/// Creates a leaf holding `value`. Constants have requires_grad == false.
Var Constant(Matrix value);

/// Creates a trainable leaf (gradient target).
Var Parameter(Matrix value);

/// Runs backpropagation from a 1×1 scalar `loss`, seeding dloss/dloss = 1.
/// Gradients accumulate — callers zero parameter grads between steps.
void Backward(const Var& loss);

/// Collects every distinct node reachable from `root` in topological order
/// (parents before children). Exposed for testing.
std::vector<Node*> TopologicalOrder(const Var& root);

}  // namespace rll::ag

#endif  // RLL_AUTOGRAD_VARIABLE_H_
