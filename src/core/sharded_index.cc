#include "core/sharded_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace rll::core {

Status ShardedEmbeddingIndex::Build(const Matrix& embeddings,
                                    size_t shards) {
  if (shards == 0) return Status::InvalidArgument("shards must be >= 1");
  if (embeddings.rows() == 0 || embeddings.cols() == 0) {
    return Status::InvalidArgument("cannot index an empty corpus");
  }
  const size_t rows = embeddings.rows();
  const size_t cols = embeddings.cols();
  shards = std::min(shards, rows);  // Every shard stays non-empty.

  std::vector<EmbeddingIndex> built(shards);
  std::vector<size_t> offsets(shards + 1, 0);
  const size_t base = rows / shards;
  const size_t extra = rows % shards;
  size_t start = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t count = base + (s < extra ? 1 : 0);
    offsets[s] = start;
    Matrix slice(count, cols);
    std::memcpy(slice.data(), embeddings.row_data(start),
                count * cols * sizeof(double));
    RLL_RETURN_IF_ERROR(built[s].Build(slice));
    start += count;
  }
  offsets[shards] = rows;

  shards_ = std::move(built);
  offsets_ = std::move(offsets);
  total_rows_ = rows;
  return Status::OK();
}

Result<std::vector<Neighbor>> ShardedEmbeddingIndex::Query(
    const Matrix& query, size_t k) const {
  if (empty()) return Status::FailedPrecondition("index is empty");
  if (query.rows() != 1 || query.cols() != dim()) {
    return Status::InvalidArgument("query must be 1xdim");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Gather each shard's local top-k (global top-k rows are necessarily in
  // their own shard's top-k), lift local row numbers to corpus indices,
  // then rank the candidate pool by the same strict total order the
  // per-shard scans used. The pool holds at most shards*k entries.
  std::vector<Neighbor> candidates;
  candidates.reserve(shards_.size() * std::min(k, size()));
  for (size_t s = 0; s < shards_.size(); ++s) {
    RLL_ASSIGN_OR_RETURN(std::vector<Neighbor> local,
                         shards_[s].Query(query, k));
    for (Neighbor& n : local) {
      n.index += offsets_[s];
      candidates.push_back(n);
    }
  }
  const size_t kk = std::min(k, size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<long>(kk),
                    candidates.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.similarity != b.similarity) {
                        return a.similarity > b.similarity;
                      }
                      return a.index < b.index;
                    });
  candidates.resize(kk);
  return candidates;
}

}  // namespace rll::core
