// Cosine-similarity retrieval index over learned embeddings — the serving
// side of the pipeline: embed a new example, retrieve the most similar
// labeled examples (e.g. "find past classes that looked like this one").
// Brute-force scan over row-normalized vectors; exact, and fast enough for
// the corpus sizes this library targets.

#ifndef RLL_CORE_EMBEDDING_INDEX_H_
#define RLL_CORE_EMBEDDING_INDEX_H_

#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace rll::core {

struct Neighbor {
  size_t index;       // Row in the indexed corpus.
  double similarity;  // Cosine in [−1, 1].
};

class EmbeddingIndex {
 public:
  EmbeddingIndex() = default;

  /// Builds (or rebuilds) the index over a corpus of embeddings; rows are
  /// stored L2-normalized. Fails on an empty corpus.
  Status Build(const Matrix& embeddings);

  /// Appends one embedding row; returns its index.
  Result<size_t> Add(const Matrix& embedding);

  /// The k nearest corpus rows to `query` (1×dim) by cosine similarity,
  /// ranked by the strict total order (similarity desc, index asc) so
  /// results are unique even under exact ties — the property the sharded
  /// merge (core/sharded_index.h) builds on. k is clamped to the corpus
  /// size. The corpus scan
  /// runs on the global thread pool above a calibrated size threshold;
  /// results are bitwise identical at any --threads value because every
  /// similarity is computed from one corpus row with a fixed fold order.
  Result<std::vector<Neighbor>> Query(const Matrix& query, size_t k) const;

  size_t size() const { return corpus_.rows(); }
  size_t dim() const { return corpus_.cols(); }
  bool empty() const { return corpus_.rows() == 0; }

 private:
  Matrix corpus_;  // Row-normalized.
};

}  // namespace rll::core

#endif  // RLL_CORE_EMBEDDING_INDEX_H_
