// Intrinsic quality measures for learned embeddings — how well the
// embedding space separates classes, independent of any downstream
// classifier. Used by tests, the retrieval example, and ablations.

#ifndef RLL_CORE_EMBEDDING_EVAL_H_
#define RLL_CORE_EMBEDDING_EVAL_H_

#include <vector>

#include "tensor/matrix.h"

namespace rll::core {

struct EmbeddingQuality {
  /// Mean cosine similarity between same-class pairs.
  double intra_class_cosine = 0.0;
  /// Mean cosine similarity between different-class pairs.
  double inter_class_cosine = 0.0;
  /// intra − inter; > 0 means the space groups classes.
  double cosine_margin = 0.0;
  /// Silhouette-style score on cosine distance, averaged over examples,
  /// in [−1, 1].
  double silhouette = 0.0;
};

/// Computes pairwise statistics over all example pairs (O(n²·dim); intended
/// for paper-scale n). `labels` are the reference classes (0/1).
EmbeddingQuality EvaluateEmbeddings(const Matrix& embeddings,
                                    const std::vector<int>& labels);

/// Leave-one-out k-nearest-neighbor accuracy under cosine similarity —
/// the standard proxy for retrieval quality of a metric space.
double KnnAccuracy(const Matrix& embeddings, const std::vector<int>& labels,
                   size_t k = 5);

}  // namespace rll::core

#endif  // RLL_CORE_EMBEDDING_EVAL_H_
