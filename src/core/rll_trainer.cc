#include "core/rll_trainer.h"

#include <algorithm>
#include <limits>

#include "autograd/ops.h"
#include "common/finite_check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace rll::core {

RllTrainer::RllTrainer(const RllTrainerOptions& options, Rng* rng)
    : options_(options), rng_(rng) {
  RLL_CHECK(rng != nullptr);
  RLL_CHECK_GT(options.batch_size, 0u);
  RLL_CHECK_GT(options.groups_per_epoch, 0u);
  RLL_CHECK_GT(options.epochs, 0);
  if (options_.model.input_dim > 0) {
    model_ = std::make_unique<RllModel>(options_.model, rng_);
  }
}

Result<RllTrainSummary> RllTrainer::Train(
    const Matrix& features, const std::vector<int>& labels,
    const std::vector<double>& confidence) {
  const size_t n = features.rows();
  if (n == 0) return Status::InvalidArgument("empty feature matrix");
  if (labels.size() != n || confidence.size() != n) {
    return Status::InvalidArgument(
        "labels/confidence sizes must match feature rows");
  }
  for (double c : confidence) {
    if (c < 0.0 || c > 1.0) {
      return Status::InvalidArgument("confidences must lie in [0, 1]");
    }
  }
  if (options_.validation_fraction < 0.0 ||
      options_.validation_fraction >= 1.0) {
    return Status::InvalidArgument("validation_fraction must be in [0, 1)");
  }
  if (model_ == nullptr) {
    options_.model.input_dim = features.cols();
    model_ = std::make_unique<RllModel>(options_.model, rng_);
  } else if (model_->input_dim() != features.cols()) {
    return Status::InvalidArgument("feature dim does not match model input");
  }

  // One draw from the caller's stream seeds every internal stream. Each
  // consumer (holdout shuffle, validation sampling, every epoch) gets a
  // private SplitSeed-derived Rng, so the draws one consumer makes never
  // shift another's stream — a prerequisite for running folds as pool
  // tasks without their training trajectories depending on interleaving.
  const uint64_t train_seed = rng_->Next();
  constexpr uint64_t kHoldoutStream = 1ull << 32;
  constexpr uint64_t kValidationStream = (1ull << 32) + 1;

  // ---- Optional validation holdout (label-stratified).
  std::vector<int> train_labels = labels;
  std::vector<Group> validation_groups;
  if (options_.validation_fraction > 0.0) {
    Rng holdout_rng(SplitSeed(train_seed, kHoldoutStream));
    std::vector<int> val_labels(n, -1);
    for (int cls : {0, 1}) {
      std::vector<size_t> members;
      for (size_t i = 0; i < n; ++i) {
        if (labels[i] == cls) members.push_back(i);
      }
      holdout_rng.Shuffle(&members);
      const size_t take = static_cast<size_t>(
          options_.validation_fraction * static_cast<double>(members.size()));
      for (size_t j = 0; j < take; ++j) {
        train_labels[members[j]] = -1;
        val_labels[members[j]] = cls;
      }
    }
    GroupSampler val_sampler(
        val_labels, {.negatives_per_group = options_.negatives_per_group});
    auto sampled = val_sampler.Sample(options_.validation_groups,
                                      SplitSeed(train_seed, kValidationStream));
    if (!sampled.ok()) {
      return Status::FailedPrecondition(
          "validation split too small to form groups: " +
          sampled.status().message());
    }
    validation_groups = std::move(*sampled);
  }

  GroupSampler sampler(train_labels, {.negatives_per_group =
                                          options_.negatives_per_group});
  nn::Adam optimizer(model_->Parameters(), options_.adam);
  const size_t k = options_.negatives_per_group;

  // Builds the confidence-weighted group loss for groups [start, end).
  // Dropout (if configured) only applies on the training path, drawing from
  // the per-epoch rng. Every local here is scratch-backed: called inside an
  // ArenaScope (as both call sites below do), building the loss performs no
  // heap allocation — index blocks, embeddings, and the graph all land in
  // the batch arena and vanish on Reset().
  auto build_loss = [&](const std::vector<Group>& groups, size_t start,
                        size_t end, bool training, Rng* rng) {
    const size_t batch = end - start;
    // Slot-major index block: entries [s*batch, (s+1)*batch) hold the
    // feature rows for candidate slot s (slot 0 = paired positive).
    ScratchVector<size_t> anchor_idx(batch);
    ScratchVector<size_t> slot_idx((k + 1) * batch);
    for (size_t b = 0; b < batch; ++b) {
      const Group& g = groups[start + b];
      anchor_idx[b] = g.anchor;
      slot_idx[b] = g.positive;
      for (size_t s = 0; s < k; ++s) slot_idx[(s + 1) * batch + b] = g.negatives[s];
    }
    auto embed = [&](const size_t* idx, size_t count) {
      ag::Var input = ag::Constant(features.GatherRows(idx, count));
      return training ? model_->ForwardTrain(input, rng)
                      : model_->Forward(input);
    };
    ag::Var anchor_emb = embed(anchor_idx.data(), batch);
    ag::VarList candidate_embs;
    MatrixList slot_confidence;
    candidate_embs.reserve(k + 1);
    slot_confidence.reserve(k + 1);
    for (size_t s = 0; s <= k; ++s) {
      const size_t* idx = slot_idx.data() + s * batch;
      candidate_embs.push_back(embed(idx, batch));
      Matrix delta(batch, 1);
      for (size_t b = 0; b < batch; ++b) {
        delta(b, 0) = confidence[idx[b]];
      }
      slot_confidence.push_back(std::move(delta));
    }
    return GroupNllLoss(anchor_emb, candidate_embs, slot_confidence,
                        options_.eta);
  };

  // One arena backs every batch and validation graph; Reset() between
  // batches reuses the same chunks, so the steady-state loop below is
  // allocation-free (asserted under RLL_COUNT_ALLOCS in arena_test).
  Arena arena;
  // Hoisted: Parameters() builds a fresh vector, which must not happen
  // inside the batch loop.
  const std::vector<ag::Var> params = model_->Parameters();

  // ---- Epoch loop with optional early stopping on validation NLL.
  RllTrainSummary summary;
  double best_val_loss = 0.0;
  std::vector<Matrix> best_params;
  int stale_epochs = 0;
  const bool observing = !options_.observers.empty();
  if (observing) {
    const obs::TrainBeginStats begin{.num_examples = n,
                                     .planned_epochs = options_.epochs};
    for (obs::TrainerObserver* o : options_.observers) o->OnTrainBegin(begin);
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    RLL_TRACE_SPAN_ID("epoch", epoch);
    Stopwatch epoch_watch;
    Rng epoch_rng(SplitSeed(train_seed, static_cast<uint64_t>(epoch)));
    RLL_ASSIGN_OR_RETURN(
        std::vector<Group> groups,
        sampler.Sample(options_.groups_per_epoch, &epoch_rng));
    double epoch_loss = 0.0;
    double epoch_grad_norm = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < groups.size();
         start += options_.batch_size) {
      RLL_TRACE_SPAN("batch");
      const size_t end = std::min(start + options_.batch_size, groups.size());
      {
        // Everything built this batch — graph nodes, gradients, backward
        // closures — lands in the arena and is reclaimed by the Reset()
        // below. The inner block bounds the graph's lifetime: the loss
        // (and the parameter grads, via ZeroGrad) must be released while
        // their allocation headers are intact, i.e. before Reset().
        ArenaScope scope(&arena);
        ag::Var loss =
            build_loss(groups, start, end, /*training=*/true, &epoch_rng);
        // The confidence-weighted group NLL must stay finite every step; a
        // NaN here means an upstream op or a bad confidence slipped
        // through.
        RLL_DCHECK_FINITE(loss->value(0, 0));
        ag::Backward(loss);
        if (observing) {
          // ClipGradNorm at +inf never rescales — it is only the
          // global-norm reduction. Skipped entirely when nothing observes.
          const double grad_norm = nn::ClipGradNorm(
              params, std::numeric_limits<double>::infinity());
          epoch_grad_norm += grad_norm;
          const obs::BatchStats stats{.epoch = epoch,
                                      .batch = batches,
                                      .groups = end - start,
                                      .loss = loss->value(0, 0),
                                      .grad_norm = grad_norm};
          for (obs::TrainerObserver* o : options_.observers) {
            o->OnBatchEnd(stats);
          }
        }
        optimizer.Step();
        epoch_loss += loss->value(0, 0);
        // Zeroing at batch END (inside the scope) frees the arena-backed
        // parameter grads before their storage is recycled; grads start
        // empty, so the first batch needs no leading ZeroGrad.
        optimizer.ZeroGrad();
      }
      arena.Reset();
      ++batches;
    }
    summary.epoch_losses.push_back(epoch_loss /
                                   static_cast<double>(batches));
    summary.groups_trained += groups.size();
    if (observing) {
      const double seconds = epoch_watch.ElapsedSeconds();
      const obs::EpochStats stats{
          .epoch = epoch,
          .train_loss = summary.epoch_losses.back(),
          .mean_grad_norm = epoch_grad_norm / static_cast<double>(batches),
          .groups_per_sec = seconds > 0.0
                                ? static_cast<double>(groups.size()) / seconds
                                : 0.0,
          .groups = groups.size(),
          .duration_ms = seconds * 1e3};
      for (obs::TrainerObserver* o : options_.observers) o->OnEpochEnd(stats);
    }
#ifndef NDEBUG
    // Embedding-layer weights (and thus embedding norms) stay finite after
    // each optimizer epoch — diverging training aborts here, not at eval.
    for (const ag::Var& p : model_->Parameters()) {
      RLL_DCHECK_FINITE(p->value);
    }
#endif
    if (validation_groups.empty()) summary.best_epoch = epoch;

    if (!validation_groups.empty()) {
      RLL_TRACE_SPAN("validate");
      double val_loss = 0.0;
      {
        // Forward-only graph: same arena, reclaimed before the
        // best-params snapshot below so the copied parameter matrices are
        // heap-backed (they outlive every scope).
        ArenaScope scope(&arena);
        val_loss = build_loss(validation_groups, 0, validation_groups.size(),
                              /*training=*/false, nullptr)
                       ->value(0, 0);
      }
      arena.Reset();
      RLL_DCHECK_FINITE(val_loss);
      summary.validation_losses.push_back(val_loss);
      const bool improved = best_params.empty() || val_loss < best_val_loss;
      if (observing) {
        const obs::ValidationStats stats{
            .epoch = epoch, .val_loss = val_loss, .improved = improved};
        for (obs::TrainerObserver* o : options_.observers) {
          o->OnValidation(stats);
        }
      }
      if (improved) {
        best_val_loss = val_loss;
        summary.best_epoch = epoch;
        best_params.clear();
        for (const ag::Var& p : model_->Parameters()) {
          best_params.push_back(p->value);
        }
        stale_epochs = 0;
      } else if (++stale_epochs >= options_.patience) {
        summary.stopped_early = true;
        for (obs::TrainerObserver* o : options_.observers) {
          o->OnEarlyStop(epoch, summary.best_epoch);
        }
        break;
      }
      RLL_LOG(Debug) << "RLL epoch " << epoch << " train "
                     << summary.epoch_losses.back() << " val " << val_loss;
    } else {
      RLL_LOG(Debug) << "RLL epoch " << epoch << " loss "
                     << summary.epoch_losses.back();
    }
  }
  // Restore the best-validation parameters (no-op without validation).
  if (!best_params.empty()) {
    const auto params = model_->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
    }
  }
  if (observing) {
    const obs::TrainEndStats end{
        .epochs_run = static_cast<int>(summary.epoch_losses.size()),
        .best_epoch = summary.best_epoch,
        .stopped_early = summary.stopped_early,
        .groups_trained = summary.groups_trained};
    for (obs::TrainerObserver* o : options_.observers) o->OnTrainEnd(end);
  }
  return summary;
}

}  // namespace rll::core
