#include "core/rll_model.h"

#include "autograd/ops.h"

namespace rll::core {

RllModel::RllModel(const RllModelConfig& config, Rng* rng) : config_(config) {
  RLL_CHECK_GT(config.input_dim, 0u);
  RLL_CHECK(!config.hidden_dims.empty());
  nn::MlpConfig mlp_config;
  mlp_config.dims.push_back(config.input_dim);
  for (size_t d : config.hidden_dims) mlp_config.dims.push_back(d);
  mlp_config.hidden_activation = config.hidden_activation;
  mlp_config.output_activation = config.output_activation;
  mlp_config.dropout = config.dropout;
  mlp_config.layer_norm = config.layer_norm;
  encoder_ = std::make_unique<nn::Mlp>(mlp_config, rng);
}

ag::Var GroupNllLoss(const ag::Var& anchor_emb,
                     const std::vector<ag::Var>& candidate_embs,
                     const std::vector<Matrix>& slot_confidence, double eta) {
  RLL_CHECK(!candidate_embs.empty());
  RLL_CHECK_EQ(candidate_embs.size(), slot_confidence.size());
  RLL_CHECK_GT(eta, 0.0);
  const size_t batch = anchor_emb->value.rows();

  std::vector<ag::Var> scores;
  scores.reserve(candidate_embs.size());
  for (size_t s = 0; s < candidate_embs.size(); ++s) {
    RLL_CHECK_EQ(candidate_embs[s]->value.rows(), batch);
    RLL_CHECK_EQ(slot_confidence[s].rows(), batch);
    RLL_CHECK_EQ(slot_confidence[s].cols(), 1u);
    // η·δ·r(anchor, candidate); δ is data, not a gradient target.
    ag::Var cos = ag::RowCosine(anchor_emb, candidate_embs[s]);
    ag::Var weighted = ag::Mul(cos, ag::Constant(slot_confidence[s]));
    scores.push_back(ag::Scale(weighted, eta));
  }
  ag::Var logits = ag::ConcatCols(scores);          // batch×(k+1)
  ag::Var logp = ag::LogSoftmaxRows(logits);        // slot 0 is the target
  return ag::NllRows(logp, std::vector<size_t>(batch, 0));
}

}  // namespace rll::core
