#include "core/rll_model.h"

#include "autograd/ops.h"

namespace rll::core {

RllModel::RllModel(const RllModelConfig& config, Rng* rng) : config_(config) {
  RLL_CHECK_GT(config.input_dim, 0u);
  RLL_CHECK(!config.hidden_dims.empty());
  nn::MlpConfig mlp_config;
  mlp_config.dims.push_back(config.input_dim);
  for (size_t d : config.hidden_dims) mlp_config.dims.push_back(d);
  mlp_config.hidden_activation = config.hidden_activation;
  mlp_config.output_activation = config.output_activation;
  mlp_config.dropout = config.dropout;
  mlp_config.layer_norm = config.layer_norm;
  encoder_ = std::make_unique<nn::Mlp>(mlp_config, rng);
}

namespace {

// Pointer-based core shared by both GroupNllLoss overloads. Everything it
// builds — score list, targets, graph nodes — is scratch-backed, so inside
// an ArenaScope the whole loss construction is allocation-free.
ag::Var GroupNllLossImpl(const ag::Var& anchor_emb,
                         const ag::Var* candidate_embs,
                         const Matrix* slot_confidence, size_t slots,
                         double eta) {
  RLL_CHECK(slots > 0);
  RLL_CHECK_GT(eta, 0.0);
  const size_t batch = anchor_emb->value.rows();

  ag::VarList scores;
  scores.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    RLL_CHECK_EQ(candidate_embs[s]->value.rows(), batch);
    RLL_CHECK_EQ(slot_confidence[s].rows(), batch);
    RLL_CHECK_EQ(slot_confidence[s].cols(), 1u);
    // η·δ·r(anchor, candidate); δ is data, not a gradient target.
    ag::Var cos = ag::RowCosine(anchor_emb, candidate_embs[s]);
    ag::Var weighted = ag::Mul(cos, ag::Constant(slot_confidence[s]));
    scores.push_back(ag::Scale(weighted, eta));
  }
  ag::Var logits = ag::ConcatCols(scores);          // batch×(k+1)
  ag::Var logp = ag::LogSoftmaxRows(logits);        // slot 0 is the target
  ScratchVector<size_t> targets(batch, 0);
  return ag::NllRows(logp, targets.data(), batch);
}

}  // namespace

ag::Var GroupNllLoss(const ag::Var& anchor_emb,
                     const std::vector<ag::Var>& candidate_embs,
                     const std::vector<Matrix>& slot_confidence, double eta) {
  RLL_CHECK_EQ(candidate_embs.size(), slot_confidence.size());
  return GroupNllLossImpl(anchor_emb, candidate_embs.data(),
                          slot_confidence.data(), candidate_embs.size(), eta);
}

ag::Var GroupNllLoss(const ag::Var& anchor_emb,
                     const ag::VarList& candidate_embs,
                     const MatrixList& slot_confidence, double eta) {
  RLL_CHECK_EQ(candidate_embs.size(), slot_confidence.size());
  return GroupNllLossImpl(anchor_emb, candidate_embs.data(),
                          slot_confidence.data(), candidate_embs.size(), eta);
}

}  // namespace rll::core
