#include "core/model_bundle.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "tensor/serialize.h"

namespace rll::core {

namespace {

constexpr char kMagic[] = "rll-bundle";
constexpr char kVersion[] = "v2";

std::string HeaderLine(const RllModelConfig& config) {
  std::vector<std::string> dims;
  dims.push_back(std::to_string(config.input_dim));
  for (size_t d : config.hidden_dims) dims.push_back(std::to_string(d));
  return StrFormat("%s %s dims=%s hidden=%s output=%s layer_norm=%d "
                   "embed_dim=%zu",
                   kMagic, kVersion, Join(dims, ",").c_str(),
                   nn::ActivationName(config.hidden_activation),
                   nn::ActivationName(config.output_activation),
                   config.layer_norm ? 1 : 0, config.hidden_dims.back());
}

/// Parses the v2 header into a config. The header is key=value tokens
/// after "rll-bundle v2"; unknown keys are rejected so a future v3 writer
/// cannot be half-read by this loader.
Result<RllModelConfig> ParseHeader(const std::string& line) {
  std::istringstream in(line);
  std::string magic, version;
  in >> magic >> version;
  if (magic != kMagic) {
    return Status::InvalidArgument("not a bundle header: " + line);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported bundle version: " + version);
  }

  RllModelConfig config;
  bool have_dims = false, have_hidden = false, have_output = false;
  size_t declared_embed_dim = 0;
  bool have_embed_dim = false;
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed bundle header token: " +
                                     token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "dims") {
      std::vector<size_t> dims;
      for (const std::string& part : Split(value, ',')) {
        int64_t d = 0;
        if (!ParseInt(part, &d) || d <= 0) {
          return Status::InvalidArgument("bad dims in bundle header: " +
                                         value);
        }
        dims.push_back(static_cast<size_t>(d));
      }
      if (dims.size() < 2) {
        return Status::InvalidArgument(
            "bundle header needs >= 2 dims (input + embedding)");
      }
      config.input_dim = dims[0];
      config.hidden_dims.assign(dims.begin() + 1, dims.end());
      have_dims = true;
    } else if (key == "hidden") {
      RLL_ASSIGN_OR_RETURN(config.hidden_activation,
                           nn::ParseActivation(value));
      have_hidden = true;
    } else if (key == "output") {
      RLL_ASSIGN_OR_RETURN(config.output_activation,
                           nn::ParseActivation(value));
      have_output = true;
    } else if (key == "layer_norm") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument("bad layer_norm in bundle header: " +
                                       value);
      }
      config.layer_norm = value == "1";
    } else if (key == "embed_dim") {
      int64_t d = 0;
      if (!ParseInt(value, &d) || d <= 0) {
        return Status::InvalidArgument("bad embed_dim in bundle header: " +
                                       value);
      }
      declared_embed_dim = static_cast<size_t>(d);
      have_embed_dim = true;
    } else {
      return Status::InvalidArgument("unknown bundle header key: " + key);
    }
  }
  if (!have_dims || !have_hidden || !have_output) {
    return Status::InvalidArgument(
        "bundle header must declare dims, hidden, and output");
  }
  if (have_embed_dim && declared_embed_dim != config.hidden_dims.back()) {
    return Status::InvalidArgument(
        "bundle header embed_dim disagrees with dims");
  }
  return config;
}

/// Shared tail of both load paths: wraps (standardizer stats, config,
/// parameter values) into a bundle, shape-checking each parameter against
/// the freshly constructed architecture.
Result<ModelBundle> AssembleBundle(Matrix mean, Matrix stddev,
                                   const RllModelConfig& config,
                                   std::vector<Matrix> params) {
  if (config.input_dim != mean.cols()) {
    return Status::InvalidArgument(
        "standardizer and encoder dimensionality disagree");
  }
  return ModelBundle::FromParts(std::move(mean), std::move(stddev), config,
                                std::move(params));
}

/// Legacy headerless format: architecture inferred from weight/bias pair
/// shapes, activations at their RllModelConfig defaults (tanh).
Result<ModelBundle> LoadLegacy(std::istream* in) {
  RLL_ASSIGN_OR_RETURN(Matrix mean, ReadMatrix(in));
  RLL_ASSIGN_OR_RETURN(Matrix stddev, ReadMatrix(in));
  if (mean.rows() != 1 || !mean.SameShape(stddev)) {
    return Status::InvalidArgument("malformed standardizer block");
  }

  std::vector<Matrix> params;
  for (;;) {
    Result<Matrix> m = ReadMatrix(in);
    if (!m.ok()) break;
    params.push_back(std::move(*m));
  }
  if (params.empty() || params.size() % 2 != 0) {
    return Status::InvalidArgument(
        "bundle must contain weight/bias parameter pairs");
  }

  RllModelConfig config;
  config.input_dim = params[0].rows();
  config.hidden_dims.clear();
  for (size_t i = 0; i < params.size(); i += 2) {
    if (params[i + 1].rows() != 1 ||
        params[i + 1].cols() != params[i].cols()) {
      return Status::InvalidArgument("bias shape mismatch in bundle");
    }
    if (i > 0 && params[i].rows() != params[i - 2].cols()) {
      return Status::InvalidArgument("layer shapes do not chain in bundle");
    }
    config.hidden_dims.push_back(params[i].cols());
  }
  return AssembleBundle(std::move(mean), std::move(stddev), config,
                        std::move(params));
}

Result<ModelBundle> LoadV2(std::istream* in, const std::string& header) {
  RLL_ASSIGN_OR_RETURN(RllModelConfig config, ParseHeader(header));
  RLL_ASSIGN_OR_RETURN(Matrix mean, ReadMatrix(in));
  RLL_ASSIGN_OR_RETURN(Matrix stddev, ReadMatrix(in));
  if (mean.rows() != 1 || !mean.SameShape(stddev)) {
    return Status::InvalidArgument("malformed standardizer block");
  }
  std::vector<Matrix> params;
  for (;;) {
    Result<Matrix> m = ReadMatrix(in);
    if (!m.ok()) break;
    params.push_back(std::move(*m));
  }
  return AssembleBundle(std::move(mean), std::move(stddev), config,
                        std::move(params));
}

}  // namespace

Result<ModelBundle> ModelBundle::Create(
    const data::Standardizer& standardizer, const RllModel& model,
    Rng* rng) {
  if (!standardizer.fitted()) {
    return Status::FailedPrecondition("standardizer is not fitted");
  }
  if (standardizer.mean().cols() != model.input_dim()) {
    return Status::InvalidArgument(
        "standardizer dimensionality does not match the model input");
  }
  ModelBundle bundle;
  bundle.standardizer_ = standardizer;
  // Copy the model by cloning its architecture and parameter values.
  bundle.model_ = std::make_shared<RllModel>(model.config(), rng);
  const auto src = model.Parameters();
  const auto dst = bundle.model_->Parameters();
  for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  return bundle;
}

Result<ModelBundle> ModelBundle::FromParts(Matrix mean, Matrix stddev,
                                           const RllModelConfig& config,
                                           std::vector<Matrix> params) {
  ModelBundle bundle;
  bundle.standardizer_ =
      data::Standardizer::FromMoments(std::move(mean), std::move(stddev));
  Rng init_rng(1);  // Values are overwritten below.
  bundle.model_ = std::make_shared<RllModel>(config, &init_rng);
  const auto dst = bundle.model_->Parameters();
  if (dst.size() != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "bundle carries %zu parameter matrices but the declared "
        "architecture needs %zu",
        params.size(), dst.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!dst[i]->value.SameShape(params[i])) {
      return Status::InvalidArgument(StrFormat(
          "bundle parameter %zu is %zux%zu, architecture expects %zux%zu",
          i, params[i].rows(), params[i].cols(), dst[i]->value.rows(),
          dst[i]->value.cols()));
    }
    dst[i]->value = std::move(params[i]);
  }
  return bundle;
}

Status ModelBundle::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  out << HeaderLine(model_->config()) << "\n";
  RLL_RETURN_IF_ERROR(WriteMatrix(&out, standardizer_.mean()));
  RLL_RETURN_IF_ERROR(WriteMatrix(&out, standardizer_.stddev()));
  for (const ag::Var& p : model_->Parameters()) {
    RLL_RETURN_IF_ERROR(WriteMatrix(&out, p->value));
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ModelBundle> ModelBundle::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  // Peek at the first line: a v2 header starts with the magic; a legacy
  // file starts directly with a "matrix r c" serialization header.
  std::string first_line;
  if (!std::getline(in, first_line)) {
    return Status::InvalidArgument("empty bundle file: " + path);
  }
  if (first_line.rfind(kMagic, 0) == 0) {
    return LoadV2(&in, first_line);
  }
  // Legacy: reopen so the matrix reader sees the file from the start.
  std::ifstream legacy(path);
  if (!legacy.is_open()) return Status::IOError("cannot open: " + path);
  return LoadLegacy(&legacy);
}

Result<Matrix> ModelBundle::Embed(const Matrix& raw_features) const {
  if (raw_features.cols() != input_dim()) {
    return Status::InvalidArgument("feature dimensionality mismatch");
  }
  return model_->Embed(standardizer_.Transform(raw_features));
}

}  // namespace rll::core
