#include "core/model_bundle.h"

#include <fstream>

#include "tensor/serialize.h"

namespace rll::core {

Result<ModelBundle> ModelBundle::Create(
    const data::Standardizer& standardizer, const RllModel& model,
    Rng* rng) {
  if (!standardizer.fitted()) {
    return Status::FailedPrecondition("standardizer is not fitted");
  }
  if (standardizer.mean().cols() != model.input_dim()) {
    return Status::InvalidArgument(
        "standardizer dimensionality does not match the model input");
  }
  ModelBundle bundle;
  bundle.standardizer_ = standardizer;
  // Copy the model by cloning its architecture and parameter values.
  bundle.model_ = std::make_shared<RllModel>(model.config(), rng);
  const auto src = model.Parameters();
  const auto dst = bundle.model_->Parameters();
  for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  return bundle;
}

Status ModelBundle::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open: " + path);
  RLL_RETURN_IF_ERROR(WriteMatrix(&out, standardizer_.mean()));
  RLL_RETURN_IF_ERROR(WriteMatrix(&out, standardizer_.stddev()));
  for (const ag::Var& p : model_->Parameters()) {
    RLL_RETURN_IF_ERROR(WriteMatrix(&out, p->value));
  }
  return Status::OK();
}

Result<ModelBundle> ModelBundle::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  RLL_ASSIGN_OR_RETURN(Matrix mean, ReadMatrix(&in));
  RLL_ASSIGN_OR_RETURN(Matrix stddev, ReadMatrix(&in));
  if (mean.rows() != 1 || !mean.SameShape(stddev)) {
    return Status::InvalidArgument("malformed standardizer block");
  }

  std::vector<Matrix> params;
  for (;;) {
    Result<Matrix> m = ReadMatrix(&in);
    if (!m.ok()) break;
    params.push_back(std::move(*m));
  }
  if (params.empty() || params.size() % 2 != 0) {
    return Status::InvalidArgument(
        "bundle must contain weight/bias parameter pairs");
  }

  RllModelConfig config;
  config.input_dim = params[0].rows();
  config.hidden_dims.clear();
  for (size_t i = 0; i < params.size(); i += 2) {
    if (params[i + 1].rows() != 1 ||
        params[i + 1].cols() != params[i].cols()) {
      return Status::InvalidArgument("bias shape mismatch in bundle");
    }
    if (i > 0 && params[i].rows() != params[i - 2].cols()) {
      return Status::InvalidArgument("layer shapes do not chain in bundle");
    }
    config.hidden_dims.push_back(params[i].cols());
  }
  if (config.input_dim != mean.cols()) {
    return Status::InvalidArgument(
        "standardizer and encoder dimensionality disagree");
  }

  ModelBundle bundle;
  bundle.standardizer_ =
      data::Standardizer::FromMoments(std::move(mean), std::move(stddev));
  Rng init_rng(1);  // Values are overwritten below.
  bundle.model_ = std::make_shared<RllModel>(config, &init_rng);
  const auto dst = bundle.model_->Parameters();
  RLL_CHECK_EQ(dst.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    dst[i]->value = std::move(params[i]);
  }
  return bundle;
}

Result<Matrix> ModelBundle::Embed(const Matrix& raw_features) const {
  if (raw_features.cols() != input_dim()) {
    return Status::InvalidArgument("feature dimensionality mismatch");
  }
  return model_->Embed(standardizer_.Transform(raw_features));
}

}  // namespace rll::core
