// End-to-end RLL pipeline matching the paper's evaluation protocol (§IV-A):
// stratified 5-fold CV; per fold, infer labels and confidences from the
// crowd annotations of the training split only, learn embeddings with RLL,
// fit logistic regression on the training embeddings, and score against
// expert labels on the held-out split.

#ifndef RLL_CORE_PIPELINE_H_
#define RLL_CORE_PIPELINE_H_

#include <vector>

#include "classify/logistic_regression.h"
#include "classify/metrics.h"
#include "core/rll_trainer.h"
#include "data/dataset.h"

namespace rll::core {

struct RllPipelineOptions {
  RllTrainerOptions trainer;
  classify::LogisticRegressionOptions classifier;
  size_t folds = 5;
  /// Fit the standardizer on the training split only.
  bool standardize = true;
};

struct CvOutcome {
  classify::EvalMetrics mean;
  classify::EvalMetrics stddev;
  std::vector<classify::EvalMetrics> per_fold;
};

/// Runs the full cross-validated RLL pipeline. The dataset must carry crowd
/// annotations; expert labels are used only for test-fold scoring.
Result<CvOutcome> RunRllCrossValidation(const data::Dataset& dataset,
                                        const RllPipelineOptions& options,
                                        Rng* rng);

/// Single train/test evaluation (one fold's worth): trains on `train`,
/// returns predicted labels for `test_features` (already standardized the
/// same way as train). Useful for building custom harnesses.
Result<std::vector<int>> TrainRllAndPredict(const data::Dataset& train,
                                            const Matrix& test_features,
                                            const RllPipelineOptions& options,
                                            Rng* rng);

}  // namespace rll::core

#endif  // RLL_CORE_PIPELINE_H_
