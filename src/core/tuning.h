// Held-out hyperparameter selection, as the paper prescribes for η:
// "a smoothing hyper parameter in the softmax function, which is set
// empirically on a held-out dataset" (§III-A). Generic over any numeric
// field of RllTrainerOptions via a setter callback.

#ifndef RLL_CORE_TUNING_H_
#define RLL_CORE_TUNING_H_

#include <functional>
#include <vector>

#include "core/pipeline.h"

namespace rll::core {

struct TuningResult {
  /// Chosen grid value.
  double best_value = 0.0;
  /// Held-out accuracy at each grid point, parallel to the grid.
  std::vector<double> held_out_accuracy;
};

struct TuningOptions {
  /// Fraction of the training data held out for selection.
  double held_out_fraction = 0.25;
  /// Pipeline configuration used for every candidate (the tuned field is
  /// overwritten by `apply`).
  RllPipelineOptions pipeline;
};

/// Evaluates each grid value on a single held-out split of `train` (crowd
/// labels only; expert labels untouched) and returns the value with the
/// best held-out accuracy against majority-vote labels — tuning never sees
/// ground truth, matching how the authors could actually have tuned.
/// `apply(options, value)` writes the candidate into the trainer options.
Result<TuningResult> TuneOnHeldOut(
    const data::Dataset& train, const std::vector<double>& grid,
    const std::function<void(RllTrainerOptions*, double)>& apply,
    const TuningOptions& options, Rng* rng);

/// Convenience wrapper for the η grid the paper implies.
Result<TuningResult> TuneEta(const data::Dataset& train,
                             const TuningOptions& options, Rng* rng,
                             std::vector<double> grid = {1.0, 2.0, 5.0, 10.0,
                                                         20.0});

}  // namespace rll::core

#endif  // RLL_CORE_TUNING_H_
