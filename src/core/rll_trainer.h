// RLL training loop (§III-C): sample groups from crowd-labeled data,
// estimate per-example label confidence, and minimize the confidence-
// weighted group NLL with Adam. The three paper variants are selected by
// the confidence mode: kNone → RLL, kMle → RLL-MLE, kBayesian →
// RLL-Bayesian.

#ifndef RLL_CORE_RLL_TRAINER_H_
#define RLL_CORE_RLL_TRAINER_H_

#include <memory>
#include <vector>

#include "core/group_sampler.h"
#include "core/rll_model.h"
#include "crowd/confidence.h"
#include "nn/optimizer.h"
#include "obs/observer.h"

namespace rll::core {

struct RllTrainerOptions {
  /// Encoder architecture; input_dim is filled from the feature matrix.
  RllModelConfig model;
  /// Softmax temperature η (set empirically on held-out data per §III-A).
  double eta = 10.0;
  /// k negatives per group (Table II sweeps this).
  size_t negatives_per_group = 3;
  /// Groups freshly sampled each epoch — the grouping scheme turns a few
  /// hundred labels into an unbounded training stream.
  size_t groups_per_epoch = 1024;
  /// Groups per gradient step.
  size_t batch_size = 64;
  int epochs = 20;
  nn::AdamOptions adam = {.lr = 2e-3, .weight_decay = 1e-4};
  /// δ estimator: kNone (RLL), kMle (RLL-MLE), kBayesian (RLL-Bayesian).
  crowd::ConfidenceMode confidence_mode = crowd::ConfidenceMode::kBayesian;
  /// Prior strength α+β for the Bayesian estimator.
  double prior_strength = 2.0;
  /// When > 0, this fraction of examples is held out; training monitors
  /// the group NLL on a fixed set of validation groups, keeps the best
  /// parameters, and stops early after `patience` stale epochs.
  double validation_fraction = 0.0;
  int patience = 5;
  /// Validation groups sampled once at the start (fixed for stability).
  size_t validation_groups = 256;
  /// Observation hooks (non-owning; must outlive Train). With no observers
  /// attached the loop skips all stats work beyond what the summary needs,
  /// so detached training costs only a branch per batch.
  std::vector<obs::TrainerObserver*> observers;
};

struct RllTrainSummary {
  /// Mean group NLL per epoch (training groups).
  std::vector<double> epoch_losses;
  /// Validation group NLL per epoch (empty without validation).
  std::vector<double> validation_losses;
  /// Epoch whose parameters were kept (== last epoch without validation).
  int best_epoch = 0;
  bool stopped_early = false;
  size_t groups_trained = 0;
};

class RllTrainer {
 public:
  /// `rng` outlives the trainer. It seeds model init directly; Train draws
  /// exactly one value from it and derives every internal stream (holdout
  /// shuffle, validation sampling, per-epoch group sampling and dropout)
  /// with SplitSeed, so training is reproducible from the caller's stream
  /// position alone.
  RllTrainer(const RllTrainerOptions& options, Rng* rng);

  /// Trains the encoder. `features` are the (standardized) training
  /// features; `labels` are inferred crowd labels (e.g. majority vote —
  /// expert labels must not reach training); `confidence` is δ per example
  /// (see crowd::LabelConfidence), sizes equal to features.rows().
  Result<RllTrainSummary> Train(const Matrix& features,
                                const std::vector<int>& labels,
                                const std::vector<double>& confidence);

  /// The encoder; valid after construction, trained after Train.
  const RllModel& model() const { return *model_; }
  RllModel* mutable_model() { return model_.get(); }

  const RllTrainerOptions& options() const { return options_; }

 private:
  RllTrainerOptions options_;
  Rng* rng_;
  std::unique_ptr<RllModel> model_;
};

}  // namespace rll::core

#endif  // RLL_CORE_RLL_TRAINER_H_
