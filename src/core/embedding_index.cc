#include "core/embedding_index.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/threading.h"

namespace rll::core {

namespace {

// Corpora smaller than this many multiply-adds score serially: below it the
// ParallelFor dispatch overhead exceeds the scan itself (same calibration
// family as the row-kernel grains in tensor/ops.cc).
constexpr size_t kQueryGrainFlops = size_t{1} << 13;

void NormalizeRowInPlace(double* row, size_t cols) {
  double norm = 0.0;
  for (size_t c = 0; c < cols; ++c) norm += row[c] * row[c];
  norm = std::max(std::sqrt(norm), 1e-12);
  for (size_t c = 0; c < cols; ++c) row[c] /= norm;
}

}  // namespace

Status EmbeddingIndex::Build(const Matrix& embeddings) {
  if (embeddings.rows() == 0 || embeddings.cols() == 0) {
    return Status::InvalidArgument("cannot index an empty corpus");
  }
  corpus_ = embeddings;
  for (size_t r = 0; r < corpus_.rows(); ++r) {
    NormalizeRowInPlace(corpus_.row_data(r), corpus_.cols());
  }
  return Status::OK();
}

Result<size_t> EmbeddingIndex::Add(const Matrix& embedding) {
  if (embedding.rows() != 1) {
    return Status::InvalidArgument("Add expects a single 1xdim row");
  }
  if (!empty() && embedding.cols() != dim()) {
    return Status::InvalidArgument("dimension mismatch with corpus");
  }
  Matrix grown(corpus_.rows() + 1,
               empty() ? embedding.cols() : corpus_.cols());
  for (size_t r = 0; r < corpus_.rows(); ++r) {
    grown.SetRow(r, corpus_.Row(r));
  }
  grown.SetRow(corpus_.rows(), embedding.Row(0));
  NormalizeRowInPlace(grown.row_data(corpus_.rows()), grown.cols());
  corpus_ = std::move(grown);
  return corpus_.rows() - 1;
}

Result<std::vector<Neighbor>> EmbeddingIndex::Query(const Matrix& query,
                                                    size_t k) const {
  if (empty()) return Status::FailedPrecondition("index is empty");
  if (query.rows() != 1 || query.cols() != dim()) {
    return Status::InvalidArgument("query must be 1xdim");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  // Per-thread scratch: the normalized query copy and the full score
  // buffer used to allocate on every call — the hottest allocation on the
  // neighbors path (BM_EmbeddingIndexQuery pins the win). Copy-assignment
  // reuses capacity, and ArenaPause keeps both heap-backed so a caller's
  // ArenaScope can never reclaim them out from under the thread.
  ArenaPause pause;
  thread_local Matrix q_scratch;
  thread_local std::vector<Neighbor> score_scratch;
  // Automatic-storage references so the ParallelFor lambda captures THIS
  // thread's scratch: thread_locals named directly inside the lambda would
  // resolve to each worker's own (empty) instances.
  Matrix& q = q_scratch;
  std::vector<Neighbor>& all = score_scratch;
  q = query;
  NormalizeRowInPlace(q.row_data(0), q.cols());

  // Score corpus rows in parallel. Each slot is written by exactly one
  // chunk and each dot product folds left-to-right over one row, so the
  // similarities are bitwise identical at any thread count.
  all.assign(corpus_.rows(), Neighbor{});
  const size_t cols = corpus_.cols();
  const size_t total_flops = corpus_.rows() * cols;
  const size_t grain = (GlobalThreadCount() > 1 &&
                        total_flops >= kQueryGrainFlops)
                           ? std::max<size_t>(kQueryGrainFlops / cols, 1)
                           : corpus_.rows();
  ParallelFor(0, corpus_.rows(), grain, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const double* row = corpus_.row_data(r);
      double dot = 0.0;
      for (size_t c = 0; c < cols; ++c) dot += row[c] * q(0, c);
      all[r] = {r, dot};
    }
  });
  const size_t kk = std::min(k, all.size());
  // Strict total order (similarity desc, index asc): partial_sort is not
  // stable, so without the index tie-break two equal similarities could
  // come back in either order — and the sharded merge
  // (core/sharded_index.h) needs one canonical ranking to be bitwise
  // identical to this scan at any shard count.
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(kk),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.similarity != b.similarity) {
                        return a.similarity > b.similarity;
                      }
                      return a.index < b.index;
                    });
  // Small k-sized copy out of the scratch buffer: the result crosses the
  // call boundary, so it must own its storage.
  return std::vector<Neighbor>(all.begin(),
                               all.begin() + static_cast<long>(kk));
}

}  // namespace rll::core
