// Deployable model bundle: the standardizer statistics and the trained
// encoder in one file, so serving code cannot accidentally pair a model
// with the wrong preprocessing.
//
// Format v2 (current): one header line recording the architecture, then
// matrices in tensor/serialize text format —
//   rll-bundle v2 dims=16,64,32 hidden=tanh output=tanh layer_norm=0 embed_dim=32
//   mean (1×dim), stddev (1×dim), encoder parameters in Parameters() order
// The header makes the format self-describing: a bundle trained with a
// non-default activation (or with LayerNorm) round-trips exactly instead
// of silently loading as tanh.
//
// Legacy format (pre-header files, still loadable): mean, stddev, then
// weight/bias pairs only; the architecture is inferred from the parameter
// shapes and hidden activations default to tanh (the RllModelConfig
// default those files were trained with).

#ifndef RLL_CORE_MODEL_BUNDLE_H_
#define RLL_CORE_MODEL_BUNDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rll_model.h"
#include "data/standardize.h"

namespace rll::core {

class ModelBundle {
 public:
  /// Packages a fitted standardizer and a trained model. Both are copied.
  static Result<ModelBundle> Create(const data::Standardizer& standardizer,
                                    const RllModel& model, Rng* rng);

  /// Assembles a bundle from deserialized pieces: standardizer moments
  /// (1×dim each), the declared architecture, and parameter values in
  /// Parameters() order. Shape-checks every matrix against the
  /// architecture. Loaders use this; most callers want Create or Load.
  static Result<ModelBundle> FromParts(Matrix mean, Matrix stddev,
                                       const RllModelConfig& config,
                                       std::vector<Matrix> params);

  /// Writes the bundle in the v2 headered format.
  Status Save(const std::string& path) const;

  /// Reads a bundle in either format: v2 files reconstruct the encoder
  /// exactly from the header; legacy headerless files fall back to shape
  /// inference with tanh activations.
  static Result<ModelBundle> Load(const std::string& path);

  /// Standardizes raw features with the stored statistics and embeds them.
  Result<Matrix> Embed(const Matrix& raw_features) const;

  size_t input_dim() const { return model_->input_dim(); }
  size_t embedding_dim() const { return model_->embedding_dim(); }
  const RllModel& model() const { return *model_; }
  const data::Standardizer& standardizer() const { return standardizer_; }

 private:
  ModelBundle() = default;

  data::Standardizer standardizer_;
  std::shared_ptr<RllModel> model_;
};

}  // namespace rll::core

#endif  // RLL_CORE_MODEL_BUNDLE_H_
