// Deployable model bundle: the standardizer statistics and the trained
// encoder in one file, so serving code cannot accidentally pair a model
// with the wrong preprocessing. Text format (tensor/serialize):
//   mean (1×dim), stddev (1×dim), then encoder parameters in layer order.

#ifndef RLL_CORE_MODEL_BUNDLE_H_
#define RLL_CORE_MODEL_BUNDLE_H_

#include <memory>
#include <string>

#include "core/rll_model.h"
#include "data/standardize.h"

namespace rll::core {

class ModelBundle {
 public:
  /// Packages a fitted standardizer and a trained model. Both are copied.
  static Result<ModelBundle> Create(const data::Standardizer& standardizer,
                                    const RllModel& model, Rng* rng);

  /// Writes the bundle to a file.
  Status Save(const std::string& path) const;

  /// Reads a bundle; the encoder architecture is reconstructed from the
  /// stored parameter shapes (hidden activations default to tanh, matching
  /// RllModelConfig).
  static Result<ModelBundle> Load(const std::string& path);

  /// Standardizes raw features with the stored statistics and embeds them.
  Result<Matrix> Embed(const Matrix& raw_features) const;

  size_t input_dim() const { return model_->input_dim(); }
  size_t embedding_dim() const { return model_->embedding_dim(); }
  const RllModel& model() const { return *model_; }
  const data::Standardizer& standardizer() const { return standardizer_; }

 private:
  ModelBundle() = default;

  data::Standardizer standardizer_;
  std::shared_ptr<RllModel> model_;
};

}  // namespace rll::core

#endif  // RLL_CORE_MODEL_BUNDLE_H_
