// Sharded view over EmbeddingIndex: the corpus is split into N contiguous
// row ranges (fixed partition, like common/threading's chunking), each
// backed by its own EmbeddingIndex, and Query merges the per-shard top-k
// lists with a deterministic total order.
//
// The merge is bitwise-identical to one unsharded scan at ANY shard count:
//   * every similarity is computed from exactly one corpus row with the
//     same left-to-right fold order regardless of which shard holds it, and
//   * both the per-shard selection and the merge rank by the strict total
//     order (similarity descending, corpus index ascending), so the top-k
//     set and its order are unique — no tie can resolve differently when
//     the shard boundaries move.
//
// This is the serving-plane layout: each event-loop shard worker owns one
// shard's scan locally, and a neighbors request anywhere merges N small
// top-k lists instead of rescanning one monolithic corpus.

#ifndef RLL_CORE_SHARDED_INDEX_H_
#define RLL_CORE_SHARDED_INDEX_H_

#include <vector>

#include "common/status.h"
#include "core/embedding_index.h"
#include "tensor/matrix.h"

namespace rll::core {

class ShardedEmbeddingIndex {
 public:
  ShardedEmbeddingIndex() = default;

  /// Builds (or rebuilds) the index over `embeddings`, split into
  /// `shards` contiguous row ranges. Shard s covers rows
  /// [offset(s), offset(s+1)): the first `rows % shards` shards get one
  /// extra row, so the partition depends only on (rows, shards). A shard
  /// count above the row count is clamped (every shard non-empty). Fails
  /// on an empty corpus or shards == 0.
  Status Build(const Matrix& embeddings, size_t shards);

  /// The k nearest corpus rows to `query` (1×dim) by cosine similarity,
  /// ranked by (similarity desc, index asc) — identical results, bitwise,
  /// at any shard count. k is clamped to the corpus size.
  Result<std::vector<Neighbor>> Query(const Matrix& query, size_t k) const;

  size_t size() const { return total_rows_; }
  size_t dim() const {
    return shards_.empty() ? 0 : shards_.front().dim();
  }
  bool empty() const { return total_rows_ == 0; }
  size_t shard_count() const { return shards_.size(); }
  /// Rows held by shard s.
  size_t shard_size(size_t s) const { return shards_[s].size(); }

 private:
  std::vector<EmbeddingIndex> shards_;
  /// offsets_[s] = global index of shard s's first row.
  std::vector<size_t> offsets_;
  size_t total_rows_ = 0;
};

}  // namespace rll::core

#endif  // RLL_CORE_SHARDED_INDEX_H_
