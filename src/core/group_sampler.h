// Grouping layer (§III-A): re-assembles limited labeled data into training
// groups g = ⟨x⁺ᵢ, x⁺ⱼ, x⁻₁, …, x⁻ₖ⟩ — one anchor positive, one paired
// positive, and k negatives. The combinatorial space has
// O(|D⁺|²·|D⁻|ᵏ) groups, so even a few hundred labeled examples yield an
// effectively unlimited stream of training instances.

#ifndef RLL_CORE_GROUP_SAMPLER_H_
#define RLL_CORE_GROUP_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace rll::core {

/// Indices into the training set (not feature values) — groups stay cheap
/// and the same sampler serves any feature matrix.
struct Group {
  size_t anchor;                  // x⁺ᵢ
  size_t positive;                // x⁺ⱼ, distinct from anchor
  std::vector<size_t> negatives;  // x⁻₁ … x⁻ₖ, distinct
};

struct GroupSamplerOptions {
  /// k — number of negatives per group. Table II sweeps {2, 3, 4, 5};
  /// the paper's best value (and our default) is 3.
  size_t negatives_per_group = 3;
};

class GroupSampler {
 public:
  /// Partitions example indices by the given (inferred, not expert) labels:
  /// label 1 → positive pool, label 0 → negative pool, any other value →
  /// excluded (used to hold out validation examples). Construction always
  /// succeeds; Sample reports insufficient data.
  GroupSampler(const std::vector<int>& labels, GroupSamplerOptions options);

  /// Draws `count` independent groups. Fails when there are fewer than two
  /// positives or fewer than k negatives.
  Result<std::vector<Group>> Sample(size_t count, Rng* rng) const;

  /// Seed-split variant: draws from a private Rng(seed). Concurrent tasks
  /// each pass their own SplitSeed-derived seed, so no mutable stream is
  /// shared and results do not depend on task interleaving.
  Result<std::vector<Group>> Sample(size_t count, uint64_t seed) const;

  /// Natural log of the group-space size log(|D⁺|²·|D⁻|ᵏ) (the paper's
  /// capacity argument); -inf when a group cannot be formed.
  double LogGroupSpace() const;

  size_t num_positives() const { return positives_.size(); }
  size_t num_negatives() const { return negatives_.size(); }
  const GroupSamplerOptions& options() const { return options_; }

 private:
  GroupSamplerOptions options_;
  std::vector<size_t> positives_;
  std::vector<size_t> negatives_;
};

}  // namespace rll::core

#endif  // RLL_CORE_GROUP_SAMPLER_H_
