#include "core/pipeline.h"

#include "common/threading.h"
#include "data/kfold.h"
#include "data/standardize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rll::core {

Result<std::vector<int>> TrainRllAndPredict(const data::Dataset& train,
                                            const Matrix& test_features,
                                            const RllPipelineOptions& options,
                                            Rng* rng) {
  if (!train.FullyAnnotated()) {
    return Status::FailedPrecondition(
        "RLL training requires crowd annotations on every example");
  }
  // Labels and confidences come from the crowd only.
  const std::vector<int> labels = train.MajorityVoteLabels();
  const std::vector<double> confidence = crowd::LabelConfidence(
      train, labels, options.trainer.confidence_mode,
      options.trainer.prior_strength);

  RllTrainer trainer(options.trainer, rng);
  {
    RLL_TRACE_SPAN("rll_train");
    RLL_RETURN_IF_ERROR(
        trainer.Train(train.features(), labels, confidence).status());
  }

  RLL_TRACE_SPAN("classify");
  const Matrix train_emb = trainer.model().Embed(train.features());
  const Matrix test_emb = trainer.model().Embed(test_features);

  classify::LogisticRegression lr(options.classifier);
  RLL_RETURN_IF_ERROR(lr.Fit(train_emb, labels));
  return lr.Predict(test_emb);
}

Result<CvOutcome> RunRllCrossValidation(const data::Dataset& dataset,
                                        const RllPipelineOptions& options,
                                        Rng* rng) {
  if (!dataset.FullyAnnotated()) {
    return Status::FailedPrecondition(
        "dataset must be crowd-annotated before evaluation");
  }
  // Stratify on expert labels (fold construction only, never training).
  const std::vector<data::Split> splits =
      data::StratifiedKFold(dataset.true_labels(), options.folds, rng);
  // Folds run as pool tasks. Each gets a private SplitSeed-derived Rng and
  // writes into its own slot, so metrics are identical at any --threads
  // value and in the same (fold) order as the historical serial loop.
  const uint64_t base_seed = rng->Next();

  RLL_TRACE_SPAN("cross_validation");
  obs::Counter* folds_done =
      obs::MetricRegistry::Global().GetCounter("rll_cv_folds_total");
  std::vector<Result<classify::EvalMetrics>> fold_results(
      splits.size(), Status::Internal("fold not run"));
  ParallelFor(0, splits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t fold = lo; fold < hi; ++fold) {
      const data::Split& split = splits[fold];
      RLL_TRACE_SPAN_ID("fold", fold);
      data::Dataset train = dataset.Subset(split.train);
      data::Dataset test = dataset.Subset(split.test);

      Matrix train_features = train.features();
      Matrix test_features = test.features();
      if (options.standardize) {
        data::Standardizer standardizer;
        train_features = standardizer.FitTransform(train_features);
        test_features = standardizer.Transform(test_features);
      }
      data::Dataset train_std(train_features, train.true_labels());
      for (size_t i = 0; i < train.size(); ++i) {
        for (const data::Annotation& a : train.annotations(i)) {
          train_std.AddAnnotation(i, a);
        }
      }

      Rng fold_rng(SplitSeed(base_seed, fold));
      Result<std::vector<int>> predicted =
          TrainRllAndPredict(train_std, test_features, options, &fold_rng);
      if (!predicted.ok()) {
        fold_results[fold] = predicted.status();
        continue;
      }
      fold_results[fold] = classify::Evaluate(test.true_labels(), *predicted);
      folds_done->Increment();
    }
  });

  CvOutcome outcome;
  for (Result<classify::EvalMetrics>& result : fold_results) {
    // First failing fold (in fold order, not completion order) wins.
    RLL_RETURN_IF_ERROR(result.status());
    outcome.per_fold.push_back(std::move(*result));
  }
  outcome.mean = classify::MeanMetrics(outcome.per_fold);
  outcome.stddev = classify::StdDevMetrics(outcome.per_fold);
  return outcome;
}

}  // namespace rll::core
