#include "core/group_sampler.h"

#include <cmath>
#include <limits>

#include "common/strings.h"
#include "obs/metrics.h"

namespace rll::core {

GroupSampler::GroupSampler(const std::vector<int>& labels,
                           GroupSamplerOptions options)
    : options_(options) {
  RLL_CHECK_GT(options.negatives_per_group, 0u);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      positives_.push_back(i);
    } else if (labels[i] == 0) {
      negatives_.push_back(i);
    }
    // Other values (e.g. -1 for held-out examples) are excluded.
  }
}

Result<std::vector<Group>> GroupSampler::Sample(size_t count,
                                                Rng* rng) const {
  const size_t k = options_.negatives_per_group;
  if (positives_.size() < 2 || negatives_.size() < k) {
    obs::MetricRegistry::Global()
        .GetCounter("rll_groups_rejected_total")
        ->Increment(count);
    if (positives_.size() < 2) {
      return Status::FailedPrecondition(
          "grouping needs at least two positive examples");
    }
    return Status::FailedPrecondition(StrFormat(
        "grouping needs at least k=%zu negatives, have %zu", k,
        negatives_.size()));
  }
  std::vector<Group> groups;
  groups.reserve(count);
  for (size_t g = 0; g < count; ++g) {
    Group group;
    const size_t a = static_cast<size_t>(rng->UniformInt(positives_.size()));
    // Paired positive distinct from the anchor: shift by a nonzero offset.
    const size_t offset =
        1 + static_cast<size_t>(rng->UniformInt(positives_.size() - 1));
    const size_t p = (a + offset) % positives_.size();
    group.anchor = positives_[a];
    group.positive = positives_[p];
    group.negatives.reserve(k);
    for (size_t idx : rng->SampleWithoutReplacement(negatives_.size(), k)) {
      group.negatives.push_back(negatives_[idx]);
    }
    groups.push_back(std::move(group));
  }
  // Bulk counter updates per call (not per group) keep the registry off the
  // per-group path; one Sample serves a whole epoch.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("rll_groups_sampled_total")->Increment(count);
  registry.GetCounter("rll_group_positives_drawn_total")
      ->Increment(2 * count);
  registry.GetCounter("rll_group_negatives_drawn_total")
      ->Increment(k * count);
  return groups;
}

Result<std::vector<Group>> GroupSampler::Sample(size_t count,
                                                uint64_t seed) const {
  Rng rng(seed);
  return Sample(count, &rng);
}

double GroupSampler::LogGroupSpace() const {
  const size_t k = options_.negatives_per_group;
  if (positives_.size() < 2 || negatives_.size() < k) {
    return -std::numeric_limits<double>::infinity();
  }
  return 2.0 * std::log(static_cast<double>(positives_.size())) +
         static_cast<double>(k) *
             std::log(static_cast<double>(negatives_.size()));
}

}  // namespace rll::core
