#include "core/tuning.h"

#include "classify/metrics.h"
#include "data/kfold.h"

namespace rll::core {

Result<TuningResult> TuneOnHeldOut(
    const data::Dataset& train, const std::vector<double>& grid,
    const std::function<void(RllTrainerOptions*, double)>& apply,
    const TuningOptions& options, Rng* rng) {
  if (grid.empty()) return Status::InvalidArgument("empty tuning grid");
  if (!train.FullyAnnotated()) {
    return Status::FailedPrecondition("tuning requires crowd annotations");
  }
  if (options.held_out_fraction <= 0.0 || options.held_out_fraction >= 1.0) {
    return Status::InvalidArgument("held_out_fraction must be in (0, 1)");
  }

  const data::Split split =
      data::TrainTestSplit(train.size(), options.held_out_fraction, rng);
  data::Dataset fit_part = train.Subset(split.train);
  data::Dataset held_out = train.Subset(split.test);
  // Selection target: majority-vote labels of the held-out part — tuning
  // must not touch expert labels.
  const std::vector<int> held_out_mv = held_out.MajorityVoteLabels();

  TuningResult result;
  result.held_out_accuracy.reserve(grid.size());
  double best_accuracy = -1.0;
  for (double value : grid) {
    RllPipelineOptions candidate = options.pipeline;
    apply(&candidate.trainer, value);
    RLL_ASSIGN_OR_RETURN(
        std::vector<int> predicted,
        TrainRllAndPredict(fit_part, held_out.features(), candidate, rng));
    const double accuracy =
        classify::Evaluate(held_out_mv, predicted).accuracy;
    result.held_out_accuracy.push_back(accuracy);
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      result.best_value = value;
    }
  }
  return result;
}

Result<TuningResult> TuneEta(const data::Dataset& train,
                             const TuningOptions& options, Rng* rng,
                             std::vector<double> grid) {
  return TuneOnHeldOut(
      train, grid,
      [](RllTrainerOptions* trainer, double eta) { trainer->eta = eta; },
      options, rng);
}

}  // namespace rll::core
