// RLL model (Figure 1): the shared multi-layer non-linear projection that
// maps raw features to low-dimensional semantic embeddings, plus the
// confidence-weighted group relevance head used during training.

#ifndef RLL_CORE_RLL_MODEL_H_
#define RLL_CORE_RLL_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.h"

namespace rll::core {

struct RllModelConfig {
  size_t input_dim = 0;
  /// Hidden layer widths; the last entry is the embedding dimension.
  std::vector<size_t> hidden_dims = {64, 32};
  nn::Activation hidden_activation = nn::Activation::kTanh;
  /// tanh keeps embeddings bounded, which stabilizes cosine scores.
  nn::Activation output_activation = nn::Activation::kTanh;
  /// Dropout on hidden activations during training (0 disables).
  double dropout = 0.0;
  /// LayerNorm after each hidden activation.
  bool layer_norm = false;
};

class RllModel {
 public:
  RllModel(const RllModelConfig& config, Rng* rng);

  /// Differentiable forward pass without dropout (evaluation graphs).
  ag::Var Forward(const ag::Var& x) const { return encoder_->Forward(x); }

  /// Differentiable forward pass with dropout when configured (training).
  ag::Var ForwardTrain(const ag::Var& x, Rng* rng) const {
    return encoder_->ForwardTrain(x, rng);
  }

  /// Inference: raw features (n×input_dim) → embeddings (n×embedding_dim).
  Matrix Embed(const Matrix& x) const { return encoder_->Embed(x); }

  /// Allocation-free inference: intermediates and the result live in
  /// caller-provided Workspace buffers (bitwise identical to Embed). The
  /// returned reference is valid until the next EmbedInto on `ws`.
  const Matrix& EmbedInto(const Matrix& x, Workspace& ws) const {
    return encoder_->EmbedInto(x, ws);
  }

  std::vector<ag::Var> Parameters() const { return encoder_->Parameters(); }

  size_t input_dim() const { return config_.input_dim; }
  size_t embedding_dim() const { return config_.hidden_dims.back(); }
  const RllModelConfig& config() const { return config_; }

  Status Save(const std::string& path) const { return encoder_->Save(path); }
  Status Load(const std::string& path) { return encoder_->Load(path); }

 private:
  RllModelConfig config_;
  std::unique_ptr<nn::Mlp> encoder_;
};

/// Confidence-weighted group loss, eq. (3):
///   L = −log p̂(x⁺ⱼ | x⁺ᵢ),
///   p̂ = exp(η·δⱼ·r(i,j)) / Σ_{x*∈g} exp(η·δ*·r(i,*)),
/// batched over `batch` groups. Inputs are the embedded anchor rows and one
/// embedded matrix per candidate slot (slot 0 = paired positive, slots
/// 1..k = negatives); `slot_confidence[s]` holds δ for slot s per group
/// (batch×1). Returns the mean loss over the batch as a 1×1 Var.
ag::Var GroupNllLoss(const ag::Var& anchor_emb,
                     const std::vector<ag::Var>& candidate_embs,
                     const std::vector<Matrix>& slot_confidence, double eta);
/// Scratch-backed overload — the trainer's hot path: inside an ArenaScope
/// the operand lists, the graph, and the loss all come from the arena.
ag::Var GroupNllLoss(const ag::Var& anchor_emb,
                     const ag::VarList& candidate_embs,
                     const MatrixList& slot_confidence, double eta);

}  // namespace rll::core

#endif  // RLL_CORE_RLL_MODEL_H_
