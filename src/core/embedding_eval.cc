#include "core/embedding_eval.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace rll::core {

namespace {

/// Row-normalizes so cosine reduces to a dot product.
Matrix NormalizeRows(const Matrix& m) {
  Matrix out = m;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.row_data(r);
    double norm = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) norm += row[c] * row[c];
    norm = std::max(std::sqrt(norm), 1e-12);
    for (size_t c = 0; c < out.cols(); ++c) row[c] /= norm;
  }
  return out;
}

double RowDot(const Matrix& m, size_t a, size_t b) {
  const double* ra = m.row_data(a);
  const double* rb = m.row_data(b);
  double dot = 0.0;
  for (size_t c = 0; c < m.cols(); ++c) dot += ra[c] * rb[c];
  return dot;
}

}  // namespace

EmbeddingQuality EvaluateEmbeddings(const Matrix& embeddings,
                                    const std::vector<int>& labels) {
  RLL_CHECK_EQ(embeddings.rows(), labels.size());
  RLL_CHECK_GE(labels.size(), 2u);
  const Matrix unit = NormalizeRows(embeddings);
  const size_t n = labels.size();

  EmbeddingQuality q;
  double intra = 0.0, inter = 0.0;
  size_t intra_n = 0, inter_n = 0;
  // Silhouette accumulators: per example, mean cosine *distance* to own
  // class (a) vs other class (b); s = (b − a)/max(a, b).
  double silhouette_total = 0.0;
  size_t silhouette_n = 0;

  std::vector<double> same_dist(n, 0.0), other_dist(n, 0.0);
  std::vector<size_t> same_count(n, 0), other_count(n, 0);

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double cos = RowDot(unit, i, j);
      const double dist = 1.0 - cos;
      if (labels[i] == labels[j]) {
        intra += cos;
        ++intra_n;
        same_dist[i] += dist;
        same_dist[j] += dist;
        ++same_count[i];
        ++same_count[j];
      } else {
        inter += cos;
        ++inter_n;
        other_dist[i] += dist;
        other_dist[j] += dist;
        ++other_count[i];
        ++other_count[j];
      }
    }
  }
  q.intra_class_cosine = intra_n ? intra / static_cast<double>(intra_n) : 0.0;
  q.inter_class_cosine = inter_n ? inter / static_cast<double>(inter_n) : 0.0;
  q.cosine_margin = q.intra_class_cosine - q.inter_class_cosine;

  for (size_t i = 0; i < n; ++i) {
    if (same_count[i] == 0 || other_count[i] == 0) continue;
    const double a = same_dist[i] / static_cast<double>(same_count[i]);
    const double b = other_dist[i] / static_cast<double>(other_count[i]);
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      silhouette_total += (b - a) / denom;
      ++silhouette_n;
    }
  }
  q.silhouette =
      silhouette_n ? silhouette_total / static_cast<double>(silhouette_n)
                   : 0.0;
  return q;
}

double KnnAccuracy(const Matrix& embeddings, const std::vector<int>& labels,
                   size_t k) {
  RLL_CHECK_EQ(embeddings.rows(), labels.size());
  RLL_CHECK_GE(labels.size(), 2u);
  RLL_CHECK_GE(k, 1u);
  const Matrix unit = NormalizeRows(embeddings);
  const size_t n = labels.size();
  const size_t kk = std::min(k, n - 1);

  size_t correct = 0;
  std::vector<std::pair<double, size_t>> sims;
  sims.reserve(n - 1);
  for (size_t i = 0; i < n; ++i) {
    sims.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sims.emplace_back(RowDot(unit, i, j), j);
    }
    std::partial_sort(sims.begin(), sims.begin() + static_cast<long>(kk),
                      sims.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    size_t votes = 0;
    for (size_t t = 0; t < kk; ++t) votes += (labels[sims[t].second] == 1);
    const int predicted = 2 * votes >= kk ? 1 : 0;
    correct += (predicted == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace rll::core
