#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "obs/json_util.h"
#include "obs/trace.h"

namespace rll::obs {

namespace {

// Deep enough for the trainer's autograd recursion; at 8 bytes a frame
// this keeps one sample at ~350 bytes.
constexpr int kMaxFrames = 40;

struct Sample {
  void* frames[kMaxFrames];
  int32_t depth = 0;
  // Leading frames belonging to the capture machinery itself (handler +
  // signal trampoline, or the test hook); dropped at report time.
  int32_t skip = 0;
  const char* span = nullptr;  // RLL_TRACE_SPAN literal, nullptr = none.
};

// A sample array and the capacity that bounds it, immutable after
// construction and published through one atomic pointer — so a capture can
// never pair a stale capacity with a newer (possibly smaller) array.
// make_unique value-initializes the samples, so even a sample that was
// never written reads as depth 0 / no span, not wild pointers.
struct SampleBuffer {
  explicit SampleBuffer(uint32_t capacity)
      : capacity(capacity), samples(std::make_unique<Sample[]>(capacity)) {}
  const uint32_t capacity;
  const std::unique_ptr<Sample[]> samples;
};

// One thread's slot. Single-writer: only the owning thread (its SIGPROF
// handler or CaptureSampleNow) writes samples/count; readers acquire-load
// `count` after loading `buffer`. The buffer is published with a release
// store, so the handler never sees a half-built one.
struct ThreadSamples {
  std::atomic<SampleBuffer*> buffer{nullptr};
  std::atomic<uint32_t> count{0};
  std::atomic<uint32_t> dropped{0};
  uint32_t tid = 0;  // Profiler registration order, 1-based.
  std::string name;  // Registry name at registration time.
};

struct ProfilerState {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadSamples>> threads RLL_GUARDED_BY(mu);
  // Parallel to `threads`: owning storage for each slot's buffer (kept out
  // of ThreadSamples so the handler-visible struct stays simple and frees
  // happen under mu).
  std::vector<std::unique_ptr<SampleBuffer>> storage RLL_GUARDED_BY(mu);
  // Buffers replaced by a session with a different max_samples_per_thread.
  // Kept alive (not freed) because a concurrent capture may still hold the
  // old pointer; growth is bounded by capacity changes, not by samples.
  std::vector<std::unique_ptr<SampleBuffer>> retired RLL_GUARDED_BY(mu);
  uint32_t next_tid RLL_GUARDED_BY(mu) = 1;
  ProfilerOptions options RLL_GUARDED_BY(mu);
  int hz RLL_GUARDED_BY(mu) = 0;  // Most recent session's rate.
  bool ever_started RLL_GUARDED_BY(mu) = false;
  bool handler_installed RLL_GUARDED_BY(mu) = false;
};

ProfilerState& State() {
  // Leaked: thread-exit cleanup runs from thread_local destructors, which
  // can outlive function-local statics during process teardown.
  static ProfilerState* state = new ProfilerState();  // rll-lint: allow(naked-new-delete)
  return *state;
}

std::atomic<bool> g_running{false};
std::atomic<uint64_t> g_unattributed{0};

thread_local ThreadSamples* tls_samples = nullptr;

void AllocateSlotLocked(ProfilerState& state, size_t index)
    RLL_REQUIRES(state.mu) {
  ThreadSamples* slot = state.threads[index].get();
  const uint32_t want =
      static_cast<uint32_t>(state.options.max_samples_per_thread);
  if (SampleBuffer* current = slot->buffer.load(std::memory_order_relaxed);
      current != nullptr) {
    if (current->capacity == want) return;
    // A new session changed max_samples_per_thread: swap in a fresh buffer
    // (discarding this slot's recorded samples) and retire the old one —
    // the owning thread's capture may still hold its pointer.
    slot->buffer.store(nullptr, std::memory_order_release);
    slot->count.store(0, std::memory_order_release);
    state.retired.push_back(std::move(state.storage[index]));
  }
  state.storage[index] = std::make_unique<SampleBuffer>(want);
  slot->buffer.store(state.storage[index].get(),
                     std::memory_order_release);
}

// Unregisters empty slots when their thread exits, so transient threads
// (one per TCP connection) don't accumulate buffers. Slots holding samples
// are kept: profiles outlive the threads they measured, until
// ClearProfile.
struct TlsSlotGuard {
  std::shared_ptr<ThreadSamples> slot;
  ~TlsSlotGuard() {
    if (slot == nullptr) return;
    tls_samples = nullptr;  // After this, no handler on this thread records.
    ProfilerState& state = State();
    MutexLock lock(state.mu);
    if (slot->count.load(std::memory_order_acquire) != 0) return;
    for (size_t i = 0; i < state.threads.size(); ++i) {
      if (state.threads[i] != slot) continue;
      state.threads.erase(state.threads.begin() + static_cast<long>(i));
      state.storage.erase(state.storage.begin() + static_cast<long>(i));
      break;
    }
  }
};
thread_local TlsSlotGuard tls_guard;

// The async-signal-safe core: everything it touches was allocated and
// published before the timer was armed. No locks, no allocation, no
// formatting; errno is the caller's job.
inline void CaptureInto(ThreadSamples* slot, int32_t skip) {
  SampleBuffer* buffer = slot->buffer.load(std::memory_order_acquire);
  const uint32_t index = slot->count.load(std::memory_order_relaxed);
  if (buffer == nullptr || index >= buffer->capacity) {
    slot->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& sample = buffer->samples[index];
  sample.depth = backtrace(sample.frames, kMaxFrames);
  sample.skip = skip;
  sample.span = CurrentThreadSpan();
  slot->count.store(index + 1, std::memory_order_release);
}

void SigprofHandler(int /*signum*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  // A signal already in flight when StopCpuProfiler disarmed the timer can
  // still deliver; record nothing for it.
  if (!g_running.load(std::memory_order_relaxed)) {
    errno = saved_errno;
    return;
  }
  ThreadSamples* slot = tls_samples;
  if (slot == nullptr) {
    g_unattributed.fetch_add(1, std::memory_order_relaxed);
  } else {
    // frames[0] is this handler, frames[1] the kernel's signal trampoline.
    CaptureInto(slot, /*skip=*/2);
  }
  errno = saved_errno;
}

/// Caches pc → demangled symbol for one report pass. dladdr only sees
/// dynamic symbols, so executables link with -rdynamic (CMake
/// ENABLE_EXPORTS); pcs it cannot name render as hex.
const std::string& Symbolize(void* pc,
                             std::map<const void*, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
      std::free(demangled);
    } else {
      name = info.dli_sname;
    }
    // ';' delimits frames in the folded format; templated symbols never
    // contain it, but a C symbol theoretically could.
    std::replace(name.begin(), name.end(), ';', ':');
  } else {
    name = StrFormat(
        "0x%llx",
        static_cast<unsigned long long>(reinterpret_cast<uintptr_t>(pc)));
  }
  return cache->emplace(pc, std::move(name)).first->second;
}

/// Snapshot of every slot plus the storage pointers, taken under the
/// directory mutex so thread-exit erasure cannot race the walk.
struct SlotSnapshot {
  std::shared_ptr<ThreadSamples> slot;
  const Sample* samples = nullptr;
  uint32_t count = 0;
};

std::vector<SlotSnapshot> SnapshotSlots(int* hz) {
  std::vector<SlotSnapshot> out;
  ProfilerState& state = State();
  MutexLock lock(state.mu);
  *hz = state.hz;
  out.reserve(state.threads.size());
  for (const auto& slot : state.threads) {
    SlotSnapshot snapshot;
    snapshot.slot = slot;
    const SampleBuffer* buffer =
        slot->buffer.load(std::memory_order_acquire);
    snapshot.samples = buffer != nullptr ? buffer->samples.get() : nullptr;
    snapshot.count = slot->count.load(std::memory_order_acquire);
    out.push_back(std::move(snapshot));
  }
  return out;
}

}  // namespace

Status StartCpuProfiler(const ProfilerOptions& options) {
  if (options.hz < 0 || options.hz > kMaxProfileHz) {
    return Status::InvalidArgument(
        StrFormat("profile hz must be in [0, %d], got %d", kMaxProfileHz,
                  options.hz));
  }
  if (options.max_samples_per_thread == 0 ||
      options.max_samples_per_thread > (1u << 20)) {
    return Status::InvalidArgument(
        "max_samples_per_thread must be in [1, 2^20]");
  }
  bool expected = false;
  if (!g_running.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("profiler is already running");
  }

  RegisterProfilerThread();
  // Warm backtrace's lazy unwinder setup (it dlopens libgcc_s and
  // allocates on first use) so no in-handler call is ever the first.
  void* warm[4];
  backtrace(warm, 4);

  ProfilerState& state = State();
  {
    MutexLock lock(state.mu);
    state.options = options;
    state.hz = options.hz;
    state.ever_started = true;
    // Slots sized by an earlier session are re-sized (and emptied) when
    // this session asks for a different max_samples_per_thread.
    for (size_t i = 0; i < state.threads.size(); ++i) {
      AllocateSlotLocked(state, i);
    }
    if (!state.handler_installed) {
      struct sigaction action;
      std::memset(&action, 0, sizeof(action));
      action.sa_sigaction = &SigprofHandler;
      action.sa_flags = SA_RESTART | SA_SIGINFO;
      sigemptyset(&action.sa_mask);
      if (sigaction(SIGPROF, &action, nullptr) != 0) {
        g_running.store(false, std::memory_order_relaxed);
        return Status::Internal("sigaction(SIGPROF) failed");
      }
      state.handler_installed = true;
    }
  }

  // Samples must attribute to spans even when tracing is off, so the
  // profiler flips its own half of the span-marking switch.
  internal::SetProfilerSpanMarking(true);

  if (options.hz > 0) {
    itimerval timer;
    std::memset(&timer, 0, sizeof(timer));
    const long interval_us = std::max(1L, 1000000L / options.hz);
    timer.it_interval.tv_sec = interval_us / 1000000;
    timer.it_interval.tv_usec = interval_us % 1000000;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
      internal::SetProfilerSpanMarking(false);
      g_running.store(false, std::memory_order_relaxed);
      return Status::Internal("setitimer(ITIMER_PROF) failed");
    }
  }
  return Status::OK();
}

void StopCpuProfiler() {
  if (!g_running.exchange(false, std::memory_order_acq_rel)) return;
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));  // Zero interval disarms.
  setitimer(ITIMER_PROF, &timer, nullptr);
  internal::SetProfilerSpanMarking(false);
}

bool CpuProfilerRunning() {
  return g_running.load(std::memory_order_relaxed);
}

void RegisterProfilerThread() {
  if (tls_samples != nullptr) return;
  auto slot = std::make_shared<ThreadSamples>();
  slot->name = CurrentThreadName();
  ProfilerState& state = State();
  {
    MutexLock lock(state.mu);
    slot->tid = state.next_tid++;
    state.threads.push_back(slot);
    state.storage.emplace_back();
    if (state.ever_started) {
      AllocateSlotLocked(state, state.threads.size() - 1);
    }
  }
  tls_guard.slot = slot;
  tls_samples = slot.get();
}

void CaptureSampleNow() {
  RegisterProfilerThread();
  ThreadSamples* slot = tls_samples;
  if (slot->buffer.load(std::memory_order_acquire) == nullptr) {
    // Not a handler: allocating here is fine, and lets tests drive the
    // sampler without arming anything.
    ProfilerState& state = State();
    MutexLock lock(state.mu);
    for (size_t i = 0; i < state.threads.size(); ++i) {
      if (state.threads[i].get() == slot) {
        AllocateSlotLocked(state, i);
        break;
      }
    }
  }
  // frames[0] is CaptureSampleNow itself.
  CaptureInto(slot, /*skip=*/1);
}

ProfileReport CollectProfile() {
  ProfileReport report;
  std::vector<SlotSnapshot> slots = SnapshotSlots(&report.hz);
  report.unattributed = g_unattributed.load(std::memory_order_relaxed);

  std::map<const void*, std::string> symbol_cache;
  std::map<std::string, uint64_t> span_totals;
  // symbol → {self, total}.
  std::map<std::string, std::pair<uint64_t, uint64_t>> symbol_totals;

  for (const SlotSnapshot& snapshot : slots) {
    const uint32_t dropped =
        snapshot.slot->dropped.load(std::memory_order_relaxed);
    report.by_thread.push_back({snapshot.slot->tid, snapshot.slot->name,
                                snapshot.count, dropped});
    report.samples += snapshot.count;
    report.dropped += dropped;
    if (snapshot.samples == nullptr) continue;
    std::vector<std::string> on_stack;
    for (uint32_t i = 0; i < snapshot.count; ++i) {
      const Sample& sample = snapshot.samples[i];
      ++span_totals[sample.span != nullptr ? sample.span : "(none)"];
      const int32_t begin = std::min(sample.skip, sample.depth);
      on_stack.clear();
      for (int32_t f = begin; f < sample.depth; ++f) {
        const std::string& symbol =
            Symbolize(sample.frames[f], &symbol_cache);
        auto& totals = symbol_totals[symbol];
        if (f == begin) ++totals.first;  // Leaf frame: self time.
        on_stack.push_back(symbol);
      }
      // Total counts each symbol once per sample, recursion included.
      std::sort(on_stack.begin(), on_stack.end());
      on_stack.erase(std::unique(on_stack.begin(), on_stack.end()),
                     on_stack.end());
      for (const std::string& symbol : on_stack) {
        ++symbol_totals[symbol].second;
      }
    }
  }

  std::sort(report.by_thread.begin(), report.by_thread.end(),
            [](const ProfileThreadTotal& a, const ProfileThreadTotal& b) {
              return a.tid < b.tid;
            });
  for (const auto& [span, samples] : span_totals) {
    report.by_span.push_back({span, samples});
  }
  std::sort(report.by_span.begin(), report.by_span.end(),
            [](const ProfileSpanTotal& a, const ProfileSpanTotal& b) {
              return a.samples != b.samples ? a.samples > b.samples
                                            : a.span < b.span;
            });
  for (const auto& [symbol, totals] : symbol_totals) {
    report.by_symbol.push_back({symbol, totals.first, totals.second});
  }
  std::sort(report.by_symbol.begin(), report.by_symbol.end(),
            [](const ProfileSymbolTotal& a, const ProfileSymbolTotal& b) {
              return a.self != b.self ? a.self > b.self
                                      : a.symbol < b.symbol;
            });
  return report;
}

std::string ProfileToFolded() {
  int hz = 0;
  const std::vector<SlotSnapshot> slots = SnapshotSlots(&hz);
  std::map<const void*, std::string> symbol_cache;
  std::map<std::string, uint64_t> stacks;
  for (const SlotSnapshot& snapshot : slots) {
    if (snapshot.samples == nullptr) continue;
    for (uint32_t i = 0; i < snapshot.count; ++i) {
      const Sample& sample = snapshot.samples[i];
      std::string line = "span:";
      line += sample.span != nullptr ? sample.span : "(none)";
      // Root-first: backtrace returns leaf-first, so walk backwards.
      const int32_t begin = std::min(sample.skip, sample.depth);
      for (int32_t f = sample.depth - 1; f >= begin; --f) {
        line += ';';
        line += Symbolize(sample.frames[f], &symbol_cache);
      }
      ++stacks[line];
    }
  }
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

std::string ProfileToJson(size_t top_n) {
  const ProfileReport report = CollectProfile();
  std::string out = "{\"by_span\":[";
  for (size_t i = 0; i < report.by_span.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("{\"samples\":%llu,\"span\":\"%s\"}",
                     static_cast<unsigned long long>(
                         report.by_span[i].samples),
                     JsonEscape(report.by_span[i].span).c_str());
  }
  out += StrFormat("],\"dropped\":%llu,\"hz\":%d,\"samples\":%llu",
                   static_cast<unsigned long long>(report.dropped),
                   report.hz,
                   static_cast<unsigned long long>(report.samples));
  out += ",\"threads\":[";
  for (size_t i = 0; i < report.by_thread.size(); ++i) {
    const ProfileThreadTotal& thread = report.by_thread[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"dropped\":%llu,\"name\":\"%s\",\"samples\":%llu,\"tid\":%u}",
        static_cast<unsigned long long>(thread.dropped),
        JsonEscape(thread.name).c_str(),
        static_cast<unsigned long long>(thread.samples), thread.tid);
  }
  out += "],\"top\":[";
  const size_t n = std::min(top_n, report.by_symbol.size());
  for (size_t i = 0; i < n; ++i) {
    const ProfileSymbolTotal& symbol = report.by_symbol[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"self\":%llu,\"symbol\":\"%s\",\"total\":%llu}",
                     static_cast<unsigned long long>(symbol.self),
                     JsonEscape(symbol.symbol).c_str(),
                     static_cast<unsigned long long>(symbol.total));
  }
  out += StrFormat("],\"unattributed\":%llu}",
                   static_cast<unsigned long long>(report.unattributed));
  return out;
}

void ClearProfile() {
  // Exact only when the profiler is stopped: a live handler's count store
  // can race these resets (the usual monitoring contract).
  ProfilerState& state = State();
  MutexLock lock(state.mu);
  for (const auto& slot : state.threads) {
    slot->count.store(0, std::memory_order_release);
    slot->dropped.store(0, std::memory_order_relaxed);
  }
  g_unattributed.store(0, std::memory_order_relaxed);
}

}  // namespace rll::obs
