// Tiny JSON emission helpers shared by the metrics and trace exporters.
// Emission only — parsing stays out of the library; the exporters produce
// machine-readable output, they never consume it.

#ifndef RLL_OBS_JSON_UTIL_H_
#define RLL_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace rll::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): backslash, quote, and control characters.
std::string JsonEscape(std::string_view s);

/// Formats a double as a JSON number: finite values via %.17g (round-trip
/// exact), NaN/Inf as null (JSON has no literal for them).
std::string JsonNumber(double value);

}  // namespace rll::obs

#endif  // RLL_OBS_JSON_UTIL_H_
