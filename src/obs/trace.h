// Trace spans: RAII scopes recorded into per-thread buffers and exported as
// Chrome trace-event JSON (load the file in chrome://tracing or Perfetto).
//
//   RLL_TRACE_SPAN("epoch");            // literal name
//   RLL_TRACE_SPAN_ID("fold", fold);    // "fold:3" — formatted only when on
//
// Tracing is off by default and costs a single relaxed atomic load + branch
// per span when off, so the instrumentation stays compiled into release
// builds. When on, each closed span appends one event to a thread-local
// buffer under an uncontended per-thread mutex. Nesting is implicit in the
// Chrome format: spans on the same thread nest by timestamp containment.

#ifndef RLL_OBS_TRACE_H_
#define RLL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rll::obs {

/// Global switch, default off. Enabling mid-run is fine; spans already open
/// record nothing.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Microseconds since process start (steady clock).
int64_t TraceNowMicros();

/// Drops all recorded events (buffers stay registered).
void ClearTraceEvents();

/// Copy of one recorded span, for tests and custom exporters.
struct TraceEventView {
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;
};

/// Snapshot of every recorded event, ordered by (tid, start).
std::vector<TraceEventView> SnapshotTraceEvents();

/// Total recorded events across all threads.
size_t TraceEventCount();

/// trace tid → thread name (common/thread_registry) for every trace buffer
/// whose thread had named itself by the time it recorded a span. Ordered
/// by tid.
std::vector<std::pair<uint32_t, std::string>> TraceThreadNames();

/// {"displayTimeUnit":"ms","traceEvents":[...]} with one complete ("ph":"X")
/// event per span; timestamps/durations in microseconds as Chrome expects.
/// Named threads additionally get a "thread_name" metadata ("ph":"M")
/// event, so Perfetto labels their rows.
std::string TraceToChromeJson();

/// Innermost active RLL_TRACE_SPAN literal on the calling thread, nullptr
/// when none (or when span marking is off). Async-signal-safe: one
/// thread-local pointer read, maintained by TraceSpan whenever tracing OR
/// the CPU profiler is on. The pointer is the macro's string literal, so it
/// stays valid for the process lifetime.
const char* CurrentThreadSpan();

namespace internal {
void RecordSpan(std::string name, int64_t start_us, int64_t end_us);

/// True when spans must maintain the thread-local current-span mark:
/// tracing is enabled or the profiler asked for marking. One relaxed load.
bool SpanMarkingEnabled();

/// The profiler's half of SpanMarkingEnabled (tracing is the other half).
void SetProfilerSpanMarking(bool on);

/// Pushes `name` as the thread's current span; returns the previous mark
/// for PopSpanMark. Literals only — the pointer is stored, not the string.
const char* PushSpanMark(const char* name);
void PopSpanMark(const char* previous);
}  // namespace internal

/// Records a completed "name:id" span from `start_us` to now. For call
/// sites where RAII does not fit — e.g. the batcher stamping one linked
/// span per sampled row after a batch completes. No-op when tracing is
/// off; pair with TraceNowMicros() captured at the start of the work.
void RecordSpanWithId(const char* name, int64_t id, int64_t start_us);

/// RAII span. Prefer the macros; use the class directly when the scope is
/// not lexical.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (internal::SpanMarkingEnabled()) Open(name);
  }
  /// Records "name:id" — the id is formatted only when tracing is on.
  TraceSpan(const char* name, int64_t id) {
    if (internal::SpanMarkingEnabled()) OpenWithId(name, id);
  }
  /// Records "name:id" when `with_id`, plain "name" otherwise — for call
  /// sites where a sampler decides at runtime whether the span carries a
  /// correlation id.
  TraceSpan(const char* name, int64_t id, bool with_id) {
    if (!internal::SpanMarkingEnabled()) return;
    if (with_id) {
      OpenWithId(name, id);
    } else {
      Open(name);
    }
  }
  ~TraceSpan() {
    if (marked_) internal::PopSpanMark(parent_);
    if (open_) {
      internal::RecordSpan(std::move(name_), start_us_, TraceNowMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Open(const char* name);
  void OpenWithId(const char* name, int64_t id);

  // A span can be marked (current-span pointer for profiler attribution)
  // without being open (event recorded at destruction): profiling with
  // tracing off marks but never records, so the hot paths stay
  // allocation-free while being profiled.
  bool open_ = false;
  bool marked_ = false;
  const char* parent_ = nullptr;
  int64_t start_us_ = 0;
  std::string name_;
};

}  // namespace rll::obs

#define RLL_OBS_CONCAT_INNER(a, b) a##b
#define RLL_OBS_CONCAT(a, b) RLL_OBS_CONCAT_INNER(a, b)

#define RLL_TRACE_SPAN(name) \
  ::rll::obs::TraceSpan RLL_OBS_CONCAT(rll_trace_span_, __LINE__)(name)

#define RLL_TRACE_SPAN_ID(name, id)                               \
  ::rll::obs::TraceSpan RLL_OBS_CONCAT(rll_trace_span_, __LINE__)( \
      name, static_cast<int64_t>(id))

#endif  // RLL_OBS_TRACE_H_
