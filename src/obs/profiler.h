// Sampling CPU profiler: SIGPROF-driven stack capture with span-attributed
// time accounting.
//
// StartCpuProfiler arms ITIMER_PROF at `hz` samples per second of consumed
// CPU time; the kernel delivers each SIGPROF on a thread that is actually
// burning cycles, and the handler appends one sample — a raw backtrace()
// stack plus the innermost active RLL_TRACE_SPAN on that thread — to the
// thread's preallocated buffer. Everything slow or unsafe is deferred:
// symbolization (dladdr + demangle), aggregation, and formatting happen at
// report time on a normal thread, never in the handler.
//
// Signal-safety rules the handler obeys (see DESIGN.md §15):
//   * no allocation, no locks, no formatting — writes go into storage
//     published before the timer was armed;
//   * per-thread buffers with a single-writer discipline: only the owning
//     thread's handler writes its buffer (release store on the count);
//     readers take the directory mutex and acquire-load;
//   * the current-span mark is one thread-local pointer read (obs/trace);
//   * backtrace() is warmed once in StartCpuProfiler so its lazy
//     libgcc_s initialization (which allocates) never runs in the handler;
//   * errno is saved and restored around the handler body.
//
// Threads register their buffer at entry (RegisterProfilerThread — the
// pool workers, the serve batcher, and TCP connection threads already do);
// SIGPROF on a never-registered thread is counted as `unattributed`
// rather than lost silently. Buffer storage is only allocated once
// profiling has actually been requested, so idle processes pay one
// pointer-sized slot per thread.
//
// Two export formats:
//   * ProfileToFolded(): Brendan Gregg collapsed stacks, one
//     "span:<name>;outermost;...;leaf count" line per unique stack —
//     pipe through flamegraph.pl for an SVG;
//   * ProfileToJson(): machine-readable report with per-span, per-symbol
//     (self/total) and per-thread sample totals.
//
// Deterministic tests: StartCpuProfiler with hz == 0 arms no timer; the
// injectable sampler hook CaptureSampleNow() then drives the exact handler
// code path from test code at known points.

#ifndef RLL_OBS_PROFILER_H_
#define RLL_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rll::obs {

struct ProfilerOptions {
  /// Samples per second of process CPU time (ITIMER_PROF). 0 arms no
  /// timer: samples then come only from CaptureSampleNow(), the
  /// deterministic test hook. Capped at kMaxProfileHz.
  int hz = 99;
  /// Per-thread sample capacity; once full, further samples on that
  /// thread increment a drop counter instead.
  size_t max_samples_per_thread = 1 << 13;
};

inline constexpr int kMaxProfileHz = 1000;

/// Arms the profiler: registers the calling thread, allocates buffers for
/// every registered thread, installs the SIGPROF handler, and (hz > 0)
/// starts the CPU-time timer. Fails if the profiler is already running or
/// the options are out of range. Also enables span marking in obs/trace so
/// samples carry the innermost active span even when tracing is off.
/// Buffers left over from an earlier session are reused when
/// max_samples_per_thread is unchanged (samples accumulate across
/// sessions until ClearProfile); a different value replaces them,
/// discarding their samples. Must not race CaptureSampleNow on another
/// thread — start, then capture.
Status StartCpuProfiler(const ProfilerOptions& options = {});

/// Disarms the timer and stops sampling. Samples survive until
/// ClearProfile() so reports can be built after stopping. Idempotent.
void StopCpuProfiler();

bool CpuProfilerRunning();

/// Registers the calling thread's sample buffer (idempotent, cheap).
/// Threads that never register have their samples counted as
/// unattributed instead of being recorded.
void RegisterProfilerThread();

/// Captures one sample on the calling thread through the same code path
/// the SIGPROF handler runs — the injectable sampler hook. Registers and
/// allocates the thread's buffer if needed (safe here: not a handler).
/// Use with StartCpuProfiler({.hz = 0}) for timer-free deterministic
/// tests; works while the real timer runs too.
void CaptureSampleNow();

struct ProfileSpanTotal {
  std::string span;  // RLL_TRACE_SPAN literal, or "(none)".
  uint64_t samples = 0;
};

struct ProfileSymbolTotal {
  std::string symbol;
  uint64_t self = 0;   // Samples with this symbol as the leaf frame.
  uint64_t total = 0;  // Samples with it anywhere on the stack.
};

struct ProfileThreadTotal {
  uint32_t tid = 0;  // Profiler registration order, 1-based.
  std::string name;  // common/thread_registry name, may be "".
  uint64_t samples = 0;
  uint64_t dropped = 0;
};

struct ProfileReport {
  uint64_t samples = 0;        // Recorded across all registered threads.
  uint64_t dropped = 0;        // Lost to full per-thread buffers.
  uint64_t unattributed = 0;   // SIGPROFs on never-registered threads.
  int hz = 0;                  // Rate of the most recent session.
  std::vector<ProfileSpanTotal> by_span;      // Descending samples.
  std::vector<ProfileSymbolTotal> by_symbol;  // Descending self.
  std::vector<ProfileThreadTotal> by_thread;  // Ascending tid.
};

/// Symbolizes and aggregates everything sampled so far. Meant to run after
/// StopCpuProfiler; collecting while the timer is live is safe but the
/// report is then a racy snapshot.
ProfileReport CollectProfile();

/// Brendan Gregg collapsed-stack lines, "frame;frame;...;frame count\n",
/// root first, each stack rooted at a "span:<name>" pseudo-frame. Lines
/// are sorted, so equal sample sets render byte-identically. Feed to
/// flamegraph.pl (see README "Profiling a run").
std::string ProfileToFolded();

/// One JSON document: {"samples":...,"dropped":...,"unattributed":...,
/// "hz":...,"by_span":[...],"threads":[...],"top":[...]} with `top`
/// holding the top_n symbols by self samples. Key order is deterministic.
std::string ProfileToJson(size_t top_n = 20);

/// Drops every recorded sample (buffers stay registered and allocated).
void ClearProfile();

}  // namespace rll::obs

#endif  // RLL_OBS_PROFILER_H_
