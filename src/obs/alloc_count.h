// Test/bench-only allocation accounting.
//
// When the build option RLL_COUNT_ALLOCS is ON (the default), the
// translation unit alloc_count.cc defines replacement global operator
// new/delete overloads that count every allocation in a relaxed atomic.
// The accessors below live in the SAME translation unit, so any binary
// that calls AllocationCount() pulls the overrides out of librll_obs.a
// and gets process-wide counting; binaries that never ask keep the
// default allocator untouched.
//
// This is an observability instrument, not an allocator: the overrides
// route through malloc/free, so ASan/TSan still see every byte (they
// intercept malloc; only the new/delete type-mismatch check is lost).
// Uses:
//
//   * tests/arena_test.cc asserts the steady-state trainer batch loop
//     performs zero operator-new calls between batches,
//   * bench/micro_ops and bench/serve_load report `allocs_per_op` into
//     their BENCH JSON, which tools/bench_gate gates (may not rise).
//
// With the option OFF, AllocCountingActive() returns false and callers
// skip their assertions / omit the metric.

#ifndef RLL_OBS_ALLOC_COUNT_H_
#define RLL_OBS_ALLOC_COUNT_H_

#include <cstdint>

namespace rll::obs {

/// True when this binary carries the counting operator-new overrides.
bool AllocCountingActive();

/// Process-wide count of operator-new calls (all variants) since start.
/// Monotonic; callers measure deltas. Always 0 when counting is inactive.
uint64_t AllocationCount();

}  // namespace rll::obs

#endif  // RLL_OBS_ALLOC_COUNT_H_
