#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_registry.h"
#include "obs/json_util.h"

namespace rll::obs {

namespace {

// Backstop against a forgotten long-running trace, not a tuning knob: at
// ~64 bytes/event this caps a runaway thread at tens of MB.
constexpr size_t kMaxEventsPerThread = 1 << 20;

std::atomic<bool> g_enabled{false};
// The profiler's half of the marking switch (see SpanMarkingEnabled).
std::atomic<bool> g_profiler_marking{false};
// Single load on the span fast path: tracing || profiler marking, kept in
// sync by the two setters.
std::atomic<bool> g_marking{false};

// Innermost active span literal on this thread. Written only by TraceSpan
// on this thread; read by this thread's SIGPROF handler, so it must stay a
// plain pointer store/load (async-signal-safe).
thread_local const char* tls_current_span = nullptr;

struct TraceEvent {
  std::string name;
  int64_t start_us;
  int64_t dur_us;
};

// Each thread appends to its own buffer; the export path walks all buffers.
// Buffers are shared_ptr so events survive thread exit until cleared.
struct ThreadBuffer {
  Mutex mu;
  std::vector<TraceEvent> events RLL_GUARDED_BY(mu);
  uint64_t dropped RLL_GUARDED_BY(mu) = 0;
  uint32_t tid = 0;  // Written once at registration, read-only after.
  // Owning thread's registry name, captured on the first recorded span
  // (threads name themselves at entry, before any span can close).
  std::string name RLL_GUARDED_BY(mu);
};

struct BufferDirectory {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers RLL_GUARDED_BY(mu);
  uint32_t next_tid RLL_GUARDED_BY(mu) = 1;
};

BufferDirectory& Directory() {
  static BufferDirectory directory;
  return directory;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferDirectory& dir = Directory();
    MutexLock lock(dir.mu);
    b->tid = dir.next_tid++;
    dir.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point ProcessOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTracingEnabled(bool enabled) {
  // Pin the origin before the first span so timestamps start near zero.
  ProcessOrigin();
  g_enabled.store(enabled, std::memory_order_relaxed);
  g_marking.store(
      enabled || g_profiler_marking.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

const char* CurrentThreadSpan() { return tls_current_span; }

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - ProcessOrigin())
      .count();
}

void ClearTraceEvents() {
  BufferDirectory& dir = Directory();
  MutexLock lock(dir.mu);
  for (const auto& buffer : dir.buffers) {
    MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::vector<TraceEventView> SnapshotTraceEvents() {
  std::vector<TraceEventView> out;
  BufferDirectory& dir = Directory();
  MutexLock lock(dir.mu);
  for (const auto& buffer : dir.buffers) {
    MutexLock buffer_lock(buffer->mu);
    for (const TraceEvent& e : buffer->events) {
      out.push_back({e.name, e.start_us, e.dur_us, buffer->tid});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              return a.tid != b.tid ? a.tid < b.tid
                                    : a.start_us < b.start_us;
            });
  return out;
}

size_t TraceEventCount() {
  size_t total = 0;
  BufferDirectory& dir = Directory();
  MutexLock lock(dir.mu);
  for (const auto& buffer : dir.buffers) {
    MutexLock buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::vector<std::pair<uint32_t, std::string>> TraceThreadNames() {
  std::vector<std::pair<uint32_t, std::string>> out;
  BufferDirectory& dir = Directory();
  MutexLock lock(dir.mu);
  for (const auto& buffer : dir.buffers) {
    MutexLock buffer_lock(buffer->mu);
    if (!buffer->name.empty()) out.emplace_back(buffer->tid, buffer->name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string TraceToChromeJson() {
  const std::vector<TraceEventView> events = SnapshotTraceEvents();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata first: Perfetto applies thread names wherever they appear,
  // but leading with them keeps the file readable.
  for (const auto& [tid, name] : TraceThreadNames()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(name).c_str());
  }
  for (const TraceEventView& e : events) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"rll\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":1,\"tid\":%u}",
        JsonEscape(e.name).c_str(), static_cast<long long>(e.start_us),
        static_cast<long long>(e.dur_us), e.tid);
  }
  out += "\n]}\n";
  return out;
}

void RecordSpanWithId(const char* name, int64_t id, int64_t start_us) {
  if (!TracingEnabled()) return;
  internal::RecordSpan(StrFormat("%s:%lld", name, static_cast<long long>(id)),
                       start_us, TraceNowMicros());
}

namespace internal {

void RecordSpan(std::string name, int64_t start_us, int64_t end_us) {
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mu);
  if (buffer.name.empty()) buffer.name = CurrentThreadName();
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      {std::move(name), start_us, end_us - start_us});
}

bool SpanMarkingEnabled() {
  return g_marking.load(std::memory_order_relaxed);
}

void SetProfilerSpanMarking(bool on) {
  ProcessOrigin();
  g_profiler_marking.store(on, std::memory_order_relaxed);
  g_marking.store(on || g_enabled.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

const char* PushSpanMark(const char* name) {
  const char* previous = tls_current_span;
  tls_current_span = name;
  return previous;
}

void PopSpanMark(const char* previous) { tls_current_span = previous; }

}  // namespace internal

void TraceSpan::Open(const char* name) {
  marked_ = true;
  parent_ = internal::PushSpanMark(name);
  if (!TracingEnabled()) return;  // Profiler-only marking: no event.
  open_ = true;
  name_ = name;
  start_us_ = TraceNowMicros();
}

void TraceSpan::OpenWithId(const char* name, int64_t id) {
  // The mark is the base literal: profiler attribution groups by span
  // kind, not by correlation id.
  marked_ = true;
  parent_ = internal::PushSpanMark(name);
  if (!TracingEnabled()) return;
  open_ = true;
  name_ = StrFormat("%s:%lld", name, static_cast<long long>(id));
  start_us_ = TraceNowMicros();
}

}  // namespace rll::obs
