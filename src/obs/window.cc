#include "obs/window.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"

namespace rll::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lock-free running min/max (same shape as the Histogram helpers): retry
// the CAS until our value is no longer an improvement.
void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void CheckWindowOptions(const WindowOptions& options) {
  RLL_CHECK_GT(options.intervals, 0u);
  RLL_CHECK_GT(options.interval_us, 0);
}

int64_t EpochOf(int64_t now_us, const WindowOptions& options) {
  RLL_DCHECK_GE(now_us, 0);
  return now_us / options.interval_us;
}

}  // namespace

WindowedCounter::WindowedCounter(WindowOptions options) : options_(options) {
  CheckWindowOptions(options_);
  slots_ = std::make_unique<Slot[]>(options_.intervals);
}

void WindowedCounter::Increment(uint64_t n) { IncrementAt(n, TraceNowMicros()); }

void WindowedCounter::IncrementAt(uint64_t n, int64_t now_us) {
  const int64_t epoch = EpochOf(now_us, options_);
  Slot& slot = slots_[static_cast<size_t>(epoch) % options_.intervals];
  int64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen < epoch) {
    if (slot.epoch.compare_exchange_weak(seen, epoch,
                                         std::memory_order_acq_rel)) {
      // CAS winner recycles the slot for the new interval. A reader (or a
      // straggling writer) racing this reset can miss one interval's worth
      // of counts — the documented boundary approximation.
      slot.count.store(0, std::memory_order_relaxed);
      break;
    }
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

WindowedCounter::Snapshot WindowedCounter::GetSnapshot() const {
  return SnapshotAt(TraceNowMicros());
}

WindowedCounter::Snapshot WindowedCounter::SnapshotAt(int64_t now_us) const {
  const int64_t epoch = EpochOf(now_us, options_);
  const int64_t min_epoch =
      epoch - static_cast<int64_t>(options_.intervals) + 1;
  Snapshot snapshot;
  snapshot.window_seconds =
      static_cast<double>(options_.intervals) *
      static_cast<double>(options_.interval_us) / 1e6;
  for (size_t i = 0; i < options_.intervals; ++i) {
    const Slot& slot = slots_[i];
    const int64_t slot_epoch = slot.epoch.load(std::memory_order_acquire);
    if (slot_epoch < min_epoch || slot_epoch > epoch) continue;
    snapshot.count += slot.count.load(std::memory_order_relaxed);
  }
  snapshot.rate_per_sec =
      static_cast<double>(snapshot.count) / snapshot.window_seconds;
  return snapshot;
}

WindowedHistogram::WindowedHistogram(HistogramOptions histogram_options,
                                     WindowOptions window_options)
    : histogram_options_(histogram_options),
      window_options_(window_options),
      bounds_(HistogramBucketBounds(histogram_options)) {
  CheckWindowOptions(window_options_);
  slots_ = std::make_unique<Slot[]>(window_options_.intervals);
  for (size_t i = 0; i < window_options_.intervals; ++i) {
    slots_[i].buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    slots_[i].min.store(kInf, std::memory_order_relaxed);
    slots_[i].max.store(-kInf, std::memory_order_relaxed);
  }
}

WindowedHistogram::Slot& WindowedHistogram::ClaimSlot(int64_t now_us) {
  const int64_t epoch = EpochOf(now_us, window_options_);
  Slot& slot =
      slots_[static_cast<size_t>(epoch) % window_options_.intervals];
  int64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen < epoch) {
    if (slot.epoch.compare_exchange_weak(seen, epoch,
                                         std::memory_order_acq_rel)) {
      // CAS winner recycles the slot. Concurrent writers that already
      // passed the epoch check may interleave with this reset; the skew
      // is bounded by one interval of observations.
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.min.store(kInf, std::memory_order_relaxed);
      slot.max.store(-kInf, std::memory_order_relaxed);
      for (size_t i = 0; i < bounds_.size() + 1; ++i) {
        slot.buckets[i].store(0, std::memory_order_relaxed);
      }
      break;
    }
  }
  return slot;
}

void WindowedHistogram::Observe(double value) {
  ObserveAt(value, TraceNowMicros());
}

void WindowedHistogram::ObserveAt(double value, int64_t now_us) {
  Slot& slot = ClaimSlot(now_us);
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&slot.min, value);
  AtomicMax(&slot.max, value);
}

WindowedHistogram::Snapshot WindowedHistogram::GetSnapshot() const {
  return SnapshotAt(TraceNowMicros());
}

WindowedHistogram::Snapshot WindowedHistogram::SnapshotAt(
    int64_t now_us) const {
  const int64_t epoch = EpochOf(now_us, window_options_);
  const int64_t min_epoch =
      epoch - static_cast<int64_t>(window_options_.intervals) + 1;

  Snapshot snapshot;
  snapshot.window_seconds =
      static_cast<double>(window_options_.intervals) *
      static_cast<double>(window_options_.interval_us) / 1e6;

  std::vector<uint64_t> buckets(bounds_.size() + 1, 0);
  double min = kInf;
  double max = -kInf;
  for (size_t i = 0; i < window_options_.intervals; ++i) {
    const Slot& slot = slots_[i];
    const int64_t slot_epoch = slot.epoch.load(std::memory_order_acquire);
    if (slot_epoch < min_epoch || slot_epoch > epoch) continue;
    const uint64_t slot_count = slot.count.load(std::memory_order_relaxed);
    if (slot_count == 0) continue;
    snapshot.count += slot_count;
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
    const double slot_min = slot.min.load(std::memory_order_relaxed);
    const double slot_max = slot.max.load(std::memory_order_relaxed);
    if (slot_min < min) min = slot_min;
    if (slot_max > max) max = slot_max;
    for (size_t b = 0; b < buckets.size(); ++b) {
      buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  snapshot.rate_per_sec =
      static_cast<double>(snapshot.count) / snapshot.window_seconds;
  if (snapshot.count == 0) return snapshot;

  snapshot.mean = snapshot.sum / static_cast<double>(snapshot.count);
  snapshot.min = min;
  snapshot.max = max;
  snapshot.p50 =
      QuantileFromBuckets(histogram_options_, bounds_, buckets, 0.50, min, max);
  snapshot.p95 =
      QuantileFromBuckets(histogram_options_, bounds_, buckets, 0.95, min, max);
  snapshot.p99 =
      QuantileFromBuckets(histogram_options_, bounds_, buckets, 0.99, min, max);
  return snapshot;
}

}  // namespace rll::obs
