#include "obs/alloc_count.h"

#ifdef RLL_COUNT_ALLOCS

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace rll::obs {
namespace {

std::atomic<uint64_t> g_allocation_count{0};

void* CountedAlloc(size_t size, size_t alignment) {
  if (size == 0) size = 1;
  for (;;) {
    void* out = nullptr;
    if (alignment <= alignof(max_align_t)) {
      out = std::malloc(size);
    } else if (posix_memalign(&out, alignment, size) != 0) {
      out = nullptr;
    }
    if (out != nullptr) {
      g_allocation_count.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* CountedAllocOrThrow(size_t size, size_t alignment) {
  void* out = CountedAlloc(size, alignment);
  if (out == nullptr) throw std::bad_alloc();
  return out;
}

}  // namespace

bool AllocCountingActive() { return true; }

uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace rll::obs

// Replacement global allocation functions. All forms funnel through
// malloc/posix_memalign (so sanitizers still intercept the underlying
// allocation) and bump one process-wide counter. Sized operator deletes
// are not replaced: the defaults forward to the unsized forms below.
// rll-lint: allow(naked-new-delete) — this file IS the operator-new hook.

void* operator new(size_t size) {
  return rll::obs::CountedAllocOrThrow(size, 0);
}
void* operator new[](size_t size) {
  return rll::obs::CountedAllocOrThrow(size, 0);
}
void* operator new(size_t size, std::align_val_t alignment) {
  return rll::obs::CountedAllocOrThrow(size, static_cast<size_t>(alignment));
}
void* operator new[](size_t size, std::align_val_t alignment) {
  return rll::obs::CountedAllocOrThrow(size, static_cast<size_t>(alignment));
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return rll::obs::CountedAlloc(size, 0);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return rll::obs::CountedAlloc(size, 0);
}
void* operator new(size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return rll::obs::CountedAlloc(size, static_cast<size_t>(alignment));
}
void* operator new[](size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return rll::obs::CountedAlloc(size, static_cast<size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#else  // !RLL_COUNT_ALLOCS

namespace rll::obs {

bool AllocCountingActive() { return false; }
uint64_t AllocationCount() { return 0; }

}  // namespace rll::obs

#endif  // RLL_COUNT_ALLOCS
