// Thread-safe in-process metrics: Counter, Gauge, Histogram, and a labeled
// MetricRegistry with text and JSONL exporters.
//
// Instruments are lock-free on the record path (relaxed atomics); the
// registry takes a mutex only on lookup, so callers on hot paths resolve
// their instrument once and then record through the returned pointer:
//
//   obs::Counter* steps = obs::MetricRegistry::Global().GetCounter(
//       "rll_adam_steps_total");
//   ...
//   steps->Increment();                       // one relaxed fetch_add
//
// Instrument pointers stay valid for the registry's lifetime (process
// lifetime for Global()). Looking up the same name + labels again returns
// the same instrument, so families of labeled series share one name:
//
//   registry.GetHistogram("rll_confidence_delta", {{"mode", "Bayesian"}});

#ifndef RLL_OBS_METRICS_H_
#define RLL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace rll::obs {

/// Metric labels, e.g. {{"mode", "bayesian"}}. std::map keeps the key order
/// canonical so label sets compare and render deterministically.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. current learning rate).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Version stamp emitted by the registry exporters. Bump when the export
/// shape changes so downstream consumers (bench_gate, scrape parsers) can
/// reject files they do not understand.
inline constexpr int kMetricsSchemaVersion = 2;

struct HistogramOptions {
  enum class Buckets {
    /// Upper bounds start, start·growth, start·growth², … (durations,
    /// norms — anything spanning orders of magnitude).
    kExponential,
    /// `count` equal-width buckets over [min, max] (bounded quantities
    /// like probabilities, where exponential buckets waste resolution).
    kLinear,
  };
  Buckets buckets = Buckets::kExponential;
  size_t count = 40;      // Finite buckets; one overflow bucket is implied.
  double start = 1e-6;    // kExponential: first upper bound.
  double growth = 2.0;    // kExponential: bound ratio, > 1.
  double min = 0.0;       // kLinear range.
  double max = 1.0;
};

/// One bucket's most recent exemplar: a correlation id (e.g. a serve
/// trace_id) captured alongside an observation that landed in the bucket,
/// letting a dashboard jump from "p99 is high" to one concrete traced
/// request. trace_id 0 means the bucket has no exemplar yet.
struct HistogramExemplar {
  uint64_t trace_id = 0;
  double value = 0.0;
};

/// Fixed-bucket histogram with interpolated percentiles. Observations are
/// relaxed atomic increments; snapshots taken concurrently with writers are
/// approximate (each field is individually consistent), which is the usual
/// monitoring contract.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Observe(value), additionally stamping (trace_id, value) as the
  /// containing bucket's exemplar (last write wins). trace_id 0 records no
  /// exemplar. The id and value are separate relaxed atomics, so a racing
  /// pair of writers can mix one's id with the other's value — both still
  /// describe real observations in that bucket.
  void ObserveWithExemplar(double value, uint64_t trace_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty.
  double max() const;  // -inf when empty.
  double mean() const;  // 0 when empty.

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bucket and clamped to the observed [min, max]. Exact to
  /// within one bucket width; 0 when empty.
  double Percentile(double q) const;

  /// Upper bounds of the finite buckets (the overflow bucket is last,
  /// bound +inf, not included here).
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Snapshot of per-bucket counts, size bucket_bounds().size() + 1 (the
  /// final entry is the overflow bucket).
  std::vector<uint64_t> bucket_counts() const;

  /// Snapshot of per-bucket exemplars, same shape as bucket_counts().
  /// Entries with trace_id 0 have seen no exemplar-carrying observation.
  std::vector<HistogramExemplar> bucket_exemplars() const;

  const HistogramOptions& options() const { return options_; }

 private:
  size_t BucketFor(double value) const;

  HistogramOptions options_;
  std::vector<double> bounds_;  // Ascending finite upper bounds.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1.
  // Parallel to counts_: last exemplar per bucket (see ObserveWithExemplar).
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<double>[]> exemplar_values_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Ascending finite upper bounds for `options` (the overflow bucket is
/// implied). Shared by Histogram and WindowedHistogram so both aggregate
/// into identical bucket layouts.
std::vector<double> HistogramBucketBounds(const HistogramOptions& options);

/// Interpolated quantile over a fixed bucket table: `counts` has
/// bounds.size() + 1 entries (overflow last), the overflow bucket's upper
/// edge is pinned to `observed_max`, and the result is clamped to the
/// observed [min, max]. Returns 0 when the table is empty. Shared by
/// Histogram::Percentile and WindowedHistogram snapshots.
double QuantileFromBuckets(const HistogramOptions& options,
                           const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q,
                           double observed_min, double observed_max);

/// Callback for common/stopwatch.h's ScopedTimer: reports the elapsed
/// milliseconds into `histogram` when the timer scope exits.
std::function<void(double)> ObserveMillis(Histogram* histogram);

/// Named, labeled instrument store. One Global() registry serves the
/// process; tests construct private registries.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  /// Finds or creates the instrument for (name, labels). Re-registering an
  /// existing name with a different instrument kind is a programmer error
  /// (RLL_CHECK). Histogram options apply on first creation only.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          HistogramOptions options = {});

  /// Human-readable dump, one "name{labels} value" line per instrument,
  /// histograms with count/mean/p50/p95/p99. Starts with a
  /// "# schema_version N" comment line; instrument lines are ordered by
  /// registration key, so two exports of the same registry state are
  /// byte-identical.
  std::string ExportText() const;

  /// One JSON object per line:
  ///   {"type":"meta","schema_version":N}
  ///   {"type":"metric","kind":"counter","name":...,"labels":{...},...}
  /// Counters/gauges carry "value"; histograms carry count/sum/min/max/
  /// p50/p95/p99 and the full bucket table as [upper_bound, count] pairs.
  /// Line order is deterministic (registration-key order).
  std::string ExportJsonl() const;

  /// One JSON object for scrape endpoints:
  ///   {"schema_version":N,"metrics":{"name{labels}":...}}
  /// Counters and gauges map to bare numbers; histograms to
  /// {"kind":"histogram","count":...,"mean","min","max","p50","p95",
  /// "p99","sum"} (no bucket table — scrapes stay small). Key order is
  /// deterministic.
  std::string ExportJson() const;

  /// Snapshot of every counter as "name{labels}" → value, for
  /// since-last-scrape delta views. Deterministic order (std::map).
  std::map<std::string, uint64_t> CounterValues() const;

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      Kind kind, const HistogramOptions* options);

  mutable Mutex mu_;
  // Key: name + serialized labels. Instrument pointers handed out by the
  // Get* methods stay valid after mu_ is released (std::map nodes are
  // stable and entries are never erased), which is what makes the
  // lock-free record path possible.
  std::map<std::string, Entry> entries_ RLL_GUARDED_BY(mu_);
};

}  // namespace rll::obs

#endif  // RLL_OBS_METRICS_H_
