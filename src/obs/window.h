// Sliding-window instruments: rates and percentiles over the last N
// seconds instead of process lifetime.
//
// Both instruments keep a ring of per-interval slots. A writer computes
// the current epoch (now / interval), claims the slot `epoch % intervals`
// with one CAS when the slot still holds an older epoch (the CAS winner
// zeroes it), and then records with relaxed atomic increments — the same
// lock-free writer contract as obs::Histogram. A snapshot aggregates the
// slots whose epoch falls inside the window.
//
// Approximation contract (monitoring-grade, documented rather than
// fought): a reader racing a slot recycle can miss or double-count the
// boundary interval's worth of observations, and the window edge is
// quantized to whole intervals. Totals are never off by more than one
// interval of traffic, which is what a scrape display needs.
//
// Time is injectable (`*At(..., now_us)`) so tests drive the ring
// deterministically; the default overloads use the steady clock that
// backs obs::TraceNowMicros(), never the wall clock.

#ifndef RLL_OBS_WINDOW_H_
#define RLL_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace rll::obs {

struct WindowOptions {
  /// Ring size: the window covers `intervals` whole intervals.
  size_t intervals = 10;
  /// Width of one interval in microseconds.
  int64_t interval_us = 1'000'000;
};

/// Event count over the trailing window.
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowOptions options = {});

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void Increment(uint64_t n = 1);
  /// Test hook: record at an explicit steady-clock-style timestamp.
  void IncrementAt(uint64_t n, int64_t now_us);

  struct Snapshot {
    uint64_t count = 0;
    double rate_per_sec = 0.0;
    double window_seconds = 0.0;
  };
  Snapshot GetSnapshot() const;
  Snapshot SnapshotAt(int64_t now_us) const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
  };

  const WindowOptions options_;
  std::unique_ptr<Slot[]> slots_;
};

/// Fixed-bucket histogram over the trailing window: same bucket layout as
/// obs::Histogram (so windowed and lifetime percentiles agree when the
/// window covers the whole run), aggregated across in-window slots at
/// snapshot time.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(HistogramOptions histogram_options = {},
                             WindowOptions window_options = {});

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double value);
  /// Test hook: record at an explicit steady-clock-style timestamp.
  void ObserveAt(double value, int64_t now_us);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;  // 0 when the window is empty.
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double rate_per_sec = 0.0;
    double window_seconds = 0.0;
  };
  Snapshot GetSnapshot() const;
  Snapshot SnapshotAt(int64_t now_us) const;

  const HistogramOptions& histogram_options() const {
    return histogram_options_;
  }
  const WindowOptions& window_options() const { return window_options_; }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // Valid only when count > 0.
    std::atomic<double> max{0.0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds.size() + 1.
  };

  Slot& ClaimSlot(int64_t now_us);

  const HistogramOptions histogram_options_;
  const WindowOptions window_options_;
  std::vector<double> bounds_;  // Shared ascending finite upper bounds.
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace rll::obs

#endif  // RLL_OBS_WINDOW_H_
