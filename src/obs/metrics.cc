#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"
#include "obs/json_util.h"

namespace rll::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lock-free running min/max: retry the CAS until our value is no longer an
// improvement (another writer may have published a better bound meanwhile).
void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string LabelsToJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  return out + "}";
}

std::string LabelsToText(const Labels& labels) {
  if (labels.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(labels.size());
  for (const auto& [key, value] : labels) {
    parts.push_back(key + "=\"" + value + "\"");
  }
  return "{" + Join(parts, ",") + "}";
}

}  // namespace

std::vector<double> HistogramBucketBounds(const HistogramOptions& options) {
  RLL_CHECK_GT(options.count, 0u);
  std::vector<double> bounds;
  bounds.reserve(options.count);
  if (options.buckets == HistogramOptions::Buckets::kExponential) {
    RLL_CHECK_GT(options.start, 0.0);
    RLL_CHECK_GT(options.growth, 1.0);
    double bound = options.start;
    for (size_t i = 0; i < options.count; ++i) {
      bounds.push_back(bound);
      bound *= options.growth;
    }
  } else {
    RLL_CHECK_LT(options.min, options.max);
    const double width =
        (options.max - options.min) / static_cast<double>(options.count);
    for (size_t i = 0; i < options.count; ++i) {
      bounds.push_back(options.min + width * static_cast<double>(i + 1));
    }
  }
  return bounds;
}

double QuantileFromBuckets(const HistogramOptions& options,
                           const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q,
                           double observed_min, double observed_max) {
  RLL_CHECK_GE(q, 0.0);
  RLL_CHECK_LE(q, 1.0);
  RLL_CHECK_EQ(counts.size(), bounds.size() + 1);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i. The first bucket's lower edge is the
      // range minimum (linear) or 0 (exponential); the overflow bucket is
      // pinned to the observed maximum.
      double lower;
      if (i == 0) {
        lower = options.buckets == HistogramOptions::Buckets::kLinear
                    ? options.min
                    : 0.0;
      } else {
        lower = bounds[i - 1];
      }
      const double upper = i < bounds.size() ? bounds[i] : observed_max;
      if (upper <= lower) {
        return std::clamp(upper, observed_min, observed_max);
      }
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[i]);
      // Clamp to the observed range: bucket interpolation must never
      // report a quantile outside the data.
      return std::clamp(lower + (upper - lower) * std::clamp(frac, 0.0, 1.0),
                        observed_min, observed_max);
    }
    cumulative = next;
  }
  return observed_max;
}

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      bounds_(HistogramBucketBounds(options)),
      min_(kInf),
      max_(-kInf) {
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplar_values_ =
      std::make_unique<std::atomic<double>[]>(bounds_.size() + 1);
}

size_t Histogram::BucketFor(double value) const {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

void Histogram::Observe(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void Histogram::ObserveWithExemplar(double value, uint64_t trace_id) {
  Observe(value);
  if (trace_id == 0) return;
  const size_t bucket = BucketFor(value);
  exemplar_values_[bucket].store(value, std::memory_order_relaxed);
  exemplar_ids_[bucket].store(trace_id, std::memory_order_relaxed);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<HistogramExemplar> Histogram::bucket_exemplars() const {
  std::vector<HistogramExemplar> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].trace_id = exemplar_ids_[i].load(std::memory_order_relaxed);
    out[i].value = exemplar_values_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Percentile(double q) const {
  return QuantileFromBuckets(options_, bounds_, bucket_counts(), q, min(),
                             max());
}

std::function<void(double)> ObserveMillis(Histogram* histogram) {
  RLL_CHECK(histogram != nullptr);
  return [histogram](double millis) { histogram->Observe(millis); };
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(
    const std::string& name, const Labels& labels, Kind kind,
    const HistogramOptions* options) {
  std::string key = name;
  for (const auto& [label_key, label_value] : labels) {
    key += '\x1f' + label_key + '\x1f' + label_value;
  }
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    RLL_CHECK_MSG(it->second.kind == kind,
                  "metric re-registered with a different instrument kind");
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = labels;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          options != nullptr ? *options : HistogramOptions{});
      break;
  }
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter, nullptr)->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge, nullptr)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const Labels& labels,
                                        HistogramOptions options) {
  return FindOrCreate(name, labels, Kind::kHistogram, &options)
      ->histogram.get();
}

size_t MetricRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string MetricRegistry::ExportText() const {
  MutexLock lock(mu_);
  std::string out = StrFormat("# schema_version %d\n", kMetricsSchemaVersion);
  for (const auto& [key, entry] : entries_) {
    const std::string id = entry.name + LabelsToText(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("%s %llu\n", id.c_str(),
                         static_cast<unsigned long long>(
                             entry.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%s %g\n", id.c_str(), entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StrFormat(
            "%s count=%llu mean=%g p50=%g p95=%g p99=%g min=%g max=%g\n",
            id.c_str(), static_cast<unsigned long long>(h.count()), h.mean(),
            h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99),
            h.count() ? h.min() : 0.0, h.count() ? h.max() : 0.0);
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ExportJsonl() const {
  MutexLock lock(mu_);
  std::string out = StrFormat("{\"type\":\"meta\",\"schema_version\":%d}\n",
                              kMetricsSchemaVersion);
  for (const auto& [key, entry] : entries_) {
    std::string line = "{\"type\":\"metric\",\"name\":\"" +
                       JsonEscape(entry.name) + "\",\"labels\":" +
                       LabelsToJson(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        line += StrFormat(",\"kind\":\"counter\",\"value\":%llu",
                          static_cast<unsigned long long>(
                              entry.counter->value()));
        break;
      case Kind::kGauge:
        line += ",\"kind\":\"gauge\",\"value\":" +
                JsonNumber(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        line += StrFormat(",\"kind\":\"histogram\",\"count\":%llu",
                          static_cast<unsigned long long>(h.count()));
        line += ",\"sum\":" + JsonNumber(h.sum());
        line += ",\"mean\":" + JsonNumber(h.mean());
        line += ",\"min\":" + JsonNumber(h.count() ? h.min() : 0.0);
        line += ",\"max\":" + JsonNumber(h.count() ? h.max() : 0.0);
        line += ",\"p50\":" + JsonNumber(h.Percentile(0.50));
        line += ",\"p95\":" + JsonNumber(h.Percentile(0.95));
        line += ",\"p99\":" + JsonNumber(h.Percentile(0.99));
        line += ",\"buckets\":[";
        const std::vector<uint64_t> counts = h.bucket_counts();
        const std::vector<double>& bounds = h.bucket_bounds();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) line += ",";
          const std::string bound =
              i < bounds.size() ? JsonNumber(bounds[i]) : "null";
          line += StrFormat("[%s,%llu]", bound.c_str(),
                            static_cast<unsigned long long>(counts[i]));
        }
        line += "]";
        break;
      }
    }
    out += line + "}\n";
  }
  return out;
}

std::string MetricRegistry::ExportJson() const {
  MutexLock lock(mu_);
  std::string out = StrFormat("{\"schema_version\":%d,\"metrics\":{",
                              kMetricsSchemaVersion);
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    const std::string id = entry.name + LabelsToText(entry.labels);
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(id) + "\":";
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("%llu", static_cast<unsigned long long>(
                                     entry.counter->value()));
        break;
      case Kind::kGauge:
        out += JsonNumber(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StrFormat("{\"kind\":\"histogram\",\"count\":%llu",
                         static_cast<unsigned long long>(h.count()));
        out += ",\"mean\":" + JsonNumber(h.mean());
        out += ",\"min\":" + JsonNumber(h.count() ? h.min() : 0.0);
        out += ",\"max\":" + JsonNumber(h.count() ? h.max() : 0.0);
        out += ",\"p50\":" + JsonNumber(h.Percentile(0.50));
        out += ",\"p95\":" + JsonNumber(h.Percentile(0.95));
        out += ",\"p99\":" + JsonNumber(h.Percentile(0.99));
        out += ",\"sum\":" + JsonNumber(h.sum()) + "}";
        break;
      }
    }
  }
  out += "}}";
  return out;
}

std::map<std::string, uint64_t> MetricRegistry::CounterValues() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    out[entry.name + LabelsToText(entry.labels)] = entry.counter->value();
  }
  return out;
}

}  // namespace rll::obs
