// Trainer observation hooks. The training loop (core::RllTrainer) owns the
// schedule and calls out at well-defined points; observers record, export,
// or log without the trainer knowing where the data goes. Observers are
// non-owning raw pointers in the trainer options and must outlive training.
//
// Built-ins:
//   MetricsObserver  — records epoch/batch series into a MetricRegistry
//   JsonlObserver    — appends one JSON object per event to a file
//   ProgressObserver — throttled RLL_LOG(Info) progress lines

#ifndef RLL_OBS_OBSERVER_H_
#define RLL_OBS_OBSERVER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace rll::obs {

struct TrainBeginStats {
  size_t num_examples = 0;
  int planned_epochs = 0;
};

struct BatchStats {
  int epoch = 0;
  size_t batch = 0;   // Index within the epoch.
  size_t groups = 0;  // Groups in this batch.
  double loss = 0.0;
  double grad_norm = 0.0;  // Global L2 norm over all parameters.
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;      // Mean group NLL over the epoch.
  double mean_grad_norm = 0.0;  // Mean of per-batch global grad norms.
  double groups_per_sec = 0.0;
  size_t groups = 0;
  double duration_ms = 0.0;
};

struct ValidationStats {
  int epoch = 0;
  double val_loss = 0.0;
  bool improved = false;  // New best (parameters snapshotted).
};

struct TrainEndStats {
  int epochs_run = 0;
  int best_epoch = 0;
  bool stopped_early = false;
  size_t groups_trained = 0;
};

/// Callback interface; every hook has an empty default so observers override
/// only what they need. Callbacks run synchronously on the training thread
/// between steps — keep them cheap. Cross-validation dispatches folds as
/// thread-pool tasks sharing one observer list, so observer implementations
/// must tolerate concurrent callbacks (the built-ins do: MetricsObserver
/// writes lock-free atomics, the others serialize on an internal mutex).
class TrainerObserver {
 public:
  virtual ~TrainerObserver() = default;

  virtual void OnTrainBegin(const TrainBeginStats& /*stats*/) {}
  virtual void OnBatchEnd(const BatchStats& /*stats*/) {}
  virtual void OnEpochEnd(const EpochStats& /*stats*/) {}
  virtual void OnValidation(const ValidationStats& /*stats*/) {}
  virtual void OnEarlyStop(int /*epoch*/, int /*best_epoch*/) {}
  virtual void OnTrainEnd(const TrainEndStats& /*stats*/) {}
};

/// Records the training series into `registry` (global registry by default):
/// rll_trainer_epoch_loss / rll_trainer_grad_norm histograms,
/// rll_trainer_groups_per_sec / rll_trainer_val_loss gauges, and
/// epochs/batches/early-stop counters.
class MetricsObserver : public TrainerObserver {
 public:
  explicit MetricsObserver(MetricRegistry* registry = nullptr);

  void OnBatchEnd(const BatchStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;
  void OnValidation(const ValidationStats& stats) override;
  void OnEarlyStop(int epoch, int best_epoch) override;
  void OnTrainEnd(const TrainEndStats& stats) override;

 private:
  Histogram* epoch_loss_;
  Histogram* grad_norm_;
  Gauge* groups_per_sec_;
  Gauge* val_loss_;
  Counter* epochs_;
  Counter* batches_;
  Counter* early_stops_;
  Counter* runs_;
};

/// Streams one JSON object per event ({"type":"train_begin"|"epoch"|
/// "validation"|"early_stop"|"train_end", ...}) to `path`. Consecutive
/// training runs through the same observer (e.g. cross-validation folds)
/// are distinguished by a monotonically increasing "run" field. Batch
/// events are not written — at default settings they would dominate the
/// file 16:1 while the per-epoch series already carries the signal.
class JsonlObserver : public TrainerObserver {
 public:
  /// Truncates `path`. Check status() before relying on output.
  explicit JsonlObserver(const std::string& path);
  ~JsonlObserver() override;

  JsonlObserver(const JsonlObserver&) = delete;
  JsonlObserver& operator=(const JsonlObserver&) = delete;

  void OnTrainBegin(const TrainBeginStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;
  void OnValidation(const ValidationStats& stats) override;
  void OnEarlyStop(int epoch, int best_epoch) override;
  void OnTrainEnd(const TrainEndStats& stats) override;

  /// Flushes and closes the file; further events are dropped. Idempotent
  /// (also runs on destruction).
  void Close();

  /// OK unless the file could not be opened or a write failed.
  const Status& status() const { return status_; }

 private:
  void WriteLine(const std::string& line) RLL_REQUIRES(mu_);

  Mutex mu_;  // Serializes concurrent folds sharing this observer.
  std::FILE* file_ RLL_GUARDED_BY(mu_) = nullptr;
  int run_ RLL_GUARDED_BY(mu_) = -1;  // Incremented by each OnTrainBegin.
  // Written under mu_ by the callbacks; status() is read after training
  // (single-threaded epilogue), so it stays unguarded by contract.
  Status status_;
};

/// RLL_LOG(Info) progress: one line every `every_n_epochs`, plus the final
/// epoch, validation improvements, and early stops.
class ProgressObserver : public TrainerObserver {
 public:
  explicit ProgressObserver(int every_n_epochs = 5);

  void OnTrainBegin(const TrainBeginStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;
  void OnEarlyStop(int epoch, int best_epoch) override;

 private:
  Mutex mu_;  // Serializes concurrent folds sharing this observer.
  const int every_n_epochs_;
  int planned_epochs_ RLL_GUARDED_BY(mu_) = 0;
};

}  // namespace rll::obs

#endif  // RLL_OBS_OBSERVER_H_
