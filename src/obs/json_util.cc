#include "obs/json_util.h"

#include <cmath>

#include "common/strings.h"

namespace rll::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

}  // namespace rll::obs
