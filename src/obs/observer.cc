#include "obs/observer.h"

#include "common/logging.h"
#include "common/strings.h"
#include "obs/json_util.h"

namespace rll::obs {

// ------------------------------------------------------- MetricsObserver

MetricsObserver::MetricsObserver(MetricRegistry* registry) {
  MetricRegistry& r =
      registry != nullptr ? *registry : MetricRegistry::Global();
  // Losses and grad norms span orders of magnitude over a run; start the
  // exponential buckets low enough to resolve late-training values.
  HistogramOptions wide;
  wide.start = 1e-4;
  wide.growth = 1.5;
  wide.count = 48;
  epoch_loss_ = r.GetHistogram("rll_trainer_epoch_loss", {}, wide);
  grad_norm_ = r.GetHistogram("rll_trainer_grad_norm", {}, wide);
  groups_per_sec_ = r.GetGauge("rll_trainer_groups_per_sec");
  val_loss_ = r.GetGauge("rll_trainer_val_loss");
  epochs_ = r.GetCounter("rll_trainer_epochs_total");
  batches_ = r.GetCounter("rll_trainer_batches_total");
  early_stops_ = r.GetCounter("rll_trainer_early_stops_total");
  runs_ = r.GetCounter("rll_trainer_runs_total");
}

void MetricsObserver::OnBatchEnd(const BatchStats& stats) {
  batches_->Increment();
  grad_norm_->Observe(stats.grad_norm);
}

void MetricsObserver::OnEpochEnd(const EpochStats& stats) {
  epochs_->Increment();
  epoch_loss_->Observe(stats.train_loss);
  groups_per_sec_->Set(stats.groups_per_sec);
}

void MetricsObserver::OnValidation(const ValidationStats& stats) {
  val_loss_->Set(stats.val_loss);
}

void MetricsObserver::OnEarlyStop(int /*epoch*/, int /*best_epoch*/) {
  early_stops_->Increment();
}

void MetricsObserver::OnTrainEnd(const TrainEndStats& /*stats*/) {
  runs_->Increment();
}

// --------------------------------------------------------- JsonlObserver

JsonlObserver::JsonlObserver(const std::string& path) {
  // Uncontended (no other thread can hold a reference yet), but taking the
  // lock keeps the guarded-by contract on file_ uniform for the analysis.
  MutexLock lock(mu_);
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::IOError("cannot open " + path + " for write");
  }
}

JsonlObserver::~JsonlObserver() { Close(); }

void JsonlObserver::Close() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IOError("close failed");
    }
    file_ = nullptr;
  }
}

void JsonlObserver::WriteLine(const std::string& line) {
  if (file_ == nullptr) return;
  if (std::fprintf(file_, "%s\n", line.c_str()) < 0 && status_.ok()) {
    status_ = Status::IOError("write failed");
  }
}

void JsonlObserver::OnTrainBegin(const TrainBeginStats& stats) {
  MutexLock lock(mu_);
  ++run_;
  WriteLine(StrFormat(
      "{\"type\":\"train_begin\",\"run\":%d,\"examples\":%zu,"
      "\"planned_epochs\":%d}",
      run_, stats.num_examples, stats.planned_epochs));
}

void JsonlObserver::OnEpochEnd(const EpochStats& stats) {
  MutexLock lock(mu_);
  WriteLine(StrFormat(
      "{\"type\":\"epoch\",\"run\":%d,\"epoch\":%d,\"loss\":%s,"
      "\"grad_norm\":%s,\"groups_per_sec\":%s,\"groups\":%zu,"
      "\"duration_ms\":%s}",
      run_, stats.epoch, JsonNumber(stats.train_loss).c_str(),
      JsonNumber(stats.mean_grad_norm).c_str(),
      JsonNumber(stats.groups_per_sec).c_str(), stats.groups,
      JsonNumber(stats.duration_ms).c_str()));
}

void JsonlObserver::OnValidation(const ValidationStats& stats) {
  MutexLock lock(mu_);
  WriteLine(StrFormat(
      "{\"type\":\"validation\",\"run\":%d,\"epoch\":%d,\"val_loss\":%s,"
      "\"improved\":%s}",
      run_, stats.epoch, JsonNumber(stats.val_loss).c_str(),
      stats.improved ? "true" : "false"));
}

void JsonlObserver::OnEarlyStop(int epoch, int best_epoch) {
  MutexLock lock(mu_);
  WriteLine(StrFormat(
      "{\"type\":\"early_stop\",\"run\":%d,\"epoch\":%d,\"best_epoch\":%d}",
      run_, epoch, best_epoch));
}

void JsonlObserver::OnTrainEnd(const TrainEndStats& stats) {
  MutexLock lock(mu_);
  WriteLine(StrFormat(
      "{\"type\":\"train_end\",\"run\":%d,\"epochs_run\":%d,"
      "\"best_epoch\":%d,\"stopped_early\":%s,\"groups_trained\":%zu}",
      run_, stats.epochs_run, stats.best_epoch,
      stats.stopped_early ? "true" : "false", stats.groups_trained));
  if (std::fflush(file_) != 0 && status_.ok()) {
    status_ = Status::IOError("flush failed");
  }
}

// ------------------------------------------------------ ProgressObserver

ProgressObserver::ProgressObserver(int every_n_epochs)
    : every_n_epochs_(every_n_epochs > 0 ? every_n_epochs : 1) {}

void ProgressObserver::OnTrainBegin(const TrainBeginStats& stats) {
  MutexLock lock(mu_);
  planned_epochs_ = stats.planned_epochs;
  RLL_LOG(Info) << "training " << stats.num_examples << " examples for "
                << stats.planned_epochs << " epochs";
}

void ProgressObserver::OnEpochEnd(const EpochStats& stats) {
  MutexLock lock(mu_);
  if (stats.epoch % every_n_epochs_ != 0 &&
      stats.epoch != planned_epochs_ - 1) {
    return;
  }
  RLL_LOG(Info) << "epoch " << stats.epoch << "/" << planned_epochs_
                << " loss " << stats.train_loss << " grad_norm "
                << stats.mean_grad_norm << " ("
                << StrFormat("%.0f", stats.groups_per_sec) << " groups/s)";
}

void ProgressObserver::OnEarlyStop(int epoch, int best_epoch) {
  MutexLock lock(mu_);
  RLL_LOG(Info) << "early stop at epoch " << epoch << " (best epoch "
                << best_epoch << ")";
}

}  // namespace rll::obs
