#include "baselines/label_source.h"

#include "crowd/dawid_skene.h"
#include "crowd/glad.h"
#include "crowd/majority_vote.h"

namespace rll::baselines {

const char* LabelSourceName(LabelSource source) {
  switch (source) {
    case LabelSource::kMajorityVote:
      return "MV";
    case LabelSource::kDawidSkene:
      return "EM";
    case LabelSource::kGlad:
      return "GLAD";
  }
  return "?";
}

Result<std::vector<int>> InferLabels(const data::Dataset& dataset,
                                     LabelSource source) {
  switch (source) {
    case LabelSource::kMajorityVote: {
      crowd::MajorityVote mv;
      RLL_ASSIGN_OR_RETURN(crowd::AggregationResult r, mv.Run(dataset));
      return r.labels;
    }
    case LabelSource::kDawidSkene: {
      crowd::DawidSkene ds;
      RLL_ASSIGN_OR_RETURN(crowd::AggregationResult r, ds.Run(dataset));
      return r.labels;
    }
    case LabelSource::kGlad: {
      crowd::Glad glad;
      RLL_ASSIGN_OR_RETURN(crowd::AggregationResult r, glad.Run(dataset));
      return r.labels;
    }
  }
  return Status::InvalidArgument("unknown label source");
}

}  // namespace rll::baselines
