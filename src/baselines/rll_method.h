// Group-4 rows of Table I: the RLL variants wrapped in the Method
// interface so the benchmark harness evaluates them like every baseline.

#ifndef RLL_BASELINES_RLL_METHOD_H_
#define RLL_BASELINES_RLL_METHOD_H_

#include "baselines/method.h"
#include "core/pipeline.h"

namespace rll::baselines {

class RllVariantMethod : public Method {
 public:
  /// The confidence mode in `options.trainer.confidence_mode` selects the
  /// variant: kNone → "RLL", kMle → "RLL+MLE", kBayesian → "RLL+Bayesian".
  explicit RllVariantMethod(core::RllPipelineOptions options)
      : options_(std::move(options)) {}

  std::string name() const override;
  std::string group() const override { return "group 4"; }

  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

  const core::RllPipelineOptions& options() const { return options_; }

 private:
  core::RllPipelineOptions options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_RLL_METHOD_H_
