#include "baselines/registry.h"

#include "baselines/aggregated_lr.h"
#include "baselines/relation.h"
#include "baselines/rll_method.h"
#include "baselines/siamese.h"
#include "baselines/softprob.h"
#include "baselines/triplet.h"

namespace rll::baselines {

RegistryOptions DefaultRegistryOptions() {
  RegistryOptions options;
  options.deep.hidden_dims = {64, 32};
  options.deep.epochs = 15;
  options.deep.samples_per_epoch = 1024;

  options.rll.trainer.model.hidden_dims = {64, 32};
  options.rll.trainer.epochs = 15;
  options.rll.trainer.groups_per_epoch = 1024;
  options.rll.trainer.negatives_per_group = 3;
  options.rll.trainer.eta = 10.0;
  return options;
}

std::vector<std::unique_ptr<Method>> BuildTableOneMethods(
    const RegistryOptions& options) {
  std::vector<std::unique_ptr<Method>> methods;

  // Group 1: true-label inference + logistic regression on raw features.
  methods.push_back(std::make_unique<SoftProbMethod>(options.lr));
  methods.push_back(std::make_unique<AggregatedLrMethod>(
      LabelSource::kDawidSkene, options.lr));
  methods.push_back(
      std::make_unique<AggregatedLrMethod>(LabelSource::kGlad, options.lr));

  // Group 2: metric learners on majority-vote labels.
  auto with_source = [&options](LabelSource source) {
    DeepBaselineOptions deep = options.deep;
    deep.label_source = source;
    return deep;
  };
  methods.push_back(
      std::make_unique<SiameseMethod>(with_source(LabelSource::kMajorityVote)));
  methods.push_back(
      std::make_unique<TripletMethod>(with_source(LabelSource::kMajorityVote)));
  methods.push_back(std::make_unique<RelationMethod>(
      with_source(LabelSource::kMajorityVote)));

  // Group 3: two-stage — aggregator labels feeding the metric learners.
  methods.push_back(
      std::make_unique<SiameseMethod>(with_source(LabelSource::kDawidSkene)));
  methods.push_back(
      std::make_unique<SiameseMethod>(with_source(LabelSource::kGlad)));
  methods.push_back(
      std::make_unique<TripletMethod>(with_source(LabelSource::kDawidSkene)));
  methods.push_back(
      std::make_unique<TripletMethod>(with_source(LabelSource::kGlad)));
  methods.push_back(
      std::make_unique<RelationMethod>(with_source(LabelSource::kDawidSkene)));
  methods.push_back(
      std::make_unique<RelationMethod>(with_source(LabelSource::kGlad)));

  // Group 4: RLL variants.
  auto with_mode = [&options](crowd::ConfidenceMode mode) {
    core::RllPipelineOptions rll = options.rll;
    rll.trainer.confidence_mode = mode;
    return rll;
  };
  methods.push_back(std::make_unique<RllVariantMethod>(
      with_mode(crowd::ConfidenceMode::kNone)));
  methods.push_back(std::make_unique<RllVariantMethod>(
      with_mode(crowd::ConfidenceMode::kMle)));
  methods.push_back(std::make_unique<RllVariantMethod>(
      with_mode(crowd::ConfidenceMode::kBayesian)));

  return methods;
}

}  // namespace rll::baselines
