#include "baselines/relation.h"

#include "autograd/ops.h"
#include "baselines/pair_sampling.h"

namespace rll::baselines {

Status RelationMethod::TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                                    const std::vector<int>& labels,
                                    Rng* rng) const {
  const ClassIndex index = BuildClassIndex(labels);

  // Relation head: concat(e1, e2) → hidden → scalar relation score.
  nn::MlpConfig head_config;
  head_config.dims.push_back(2 * encoder->output_dim());
  for (size_t d : relation_hidden_) head_config.dims.push_back(d);
  head_config.dims.push_back(1);
  head_config.hidden_activation = options_.hidden_activation;
  head_config.output_activation = nn::Activation::kSigmoid;
  nn::Mlp relation_head(head_config, rng);

  std::vector<ag::Var> params = encoder->Parameters();
  for (const ag::Var& p : relation_head.Parameters()) params.push_back(p);
  nn::Adam optimizer(std::move(params), options_.adam);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t start = 0; start < options_.samples_per_epoch;
         start += options_.batch_size) {
      const size_t batch = std::min(options_.batch_size,
                                    options_.samples_per_epoch - start);
      std::vector<size_t> left(batch), right(batch);
      Matrix target(batch, 1);
      for (size_t b = 0; b < batch; ++b) {
        const Pair pair = SamplePair(index, rng);
        left[b] = pair.first;
        right[b] = pair.second;
        target(b, 0) = pair.same_class ? 1.0 : 0.0;
      }

      ag::Var e1 = encoder->Forward(ag::Constant(features.GatherRows(left)));
      ag::Var e2 = encoder->Forward(ag::Constant(features.GatherRows(right)));
      ag::Var score =
          relation_head.Forward(ag::ConcatCols(ag::VarList{e1, e2}));
      ag::Var loss =
          ag::Mean(ag::Square(ag::Sub(score, ag::Constant(target))));

      optimizer.ZeroGrad();
      ag::Backward(loss);
      optimizer.Step();
    }
  }
  return Status::OK();
}

}  // namespace rll::baselines
