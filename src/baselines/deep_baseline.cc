#include "baselines/deep_baseline.h"

namespace rll::baselines {

std::string DeepBaselineMethod::name() const {
  if (options_.label_source == LabelSource::kMajorityVote) return base_name_;
  return base_name_ + "+" + LabelSourceName(options_.label_source);
}

std::string DeepBaselineMethod::group() const {
  return options_.label_source == LabelSource::kMajorityVote ? "group 2"
                                                             : "group 3";
}

nn::MlpConfig DeepBaselineMethod::EncoderConfig(size_t input_dim) const {
  nn::MlpConfig config;
  config.dims.push_back(input_dim);
  for (size_t d : options_.hidden_dims) config.dims.push_back(d);
  config.hidden_activation = options_.hidden_activation;
  config.output_activation = options_.output_activation;
  return config;
}

Status DeepBaselineMethod::CheckTwoClasses(const std::vector<int>& labels) {
  size_t pos = 0;
  for (int y : labels) pos += (y == 1);
  const size_t neg = labels.size() - pos;
  if (pos < 2 || neg < 2) {
    return Status::FailedPrecondition(
        "metric-learning baselines need >= 2 examples of each class");
  }
  return Status::OK();
}

Result<std::vector<int>> DeepBaselineMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features, Rng* rng) const {
  RLL_ASSIGN_OR_RETURN(std::vector<int> labels,
                       InferLabels(train, options_.label_source));
  RLL_RETURN_IF_ERROR(CheckTwoClasses(labels));

  nn::Mlp encoder(EncoderConfig(train.dim()), rng);
  RLL_RETURN_IF_ERROR(
      TrainEncoder(&encoder, train.features(), labels, rng));

  const Matrix train_emb = encoder.Embed(train.features());
  const Matrix test_emb = encoder.Embed(test_features);
  classify::LogisticRegression lr(options_.classifier);
  RLL_RETURN_IF_ERROR(lr.Fit(train_emb, labels));
  return lr.Predict(test_emb);
}

}  // namespace rll::baselines
