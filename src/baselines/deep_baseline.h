// Shared machinery for the paper's group-2 deep metric-learning baselines
// (SiameseNet, TripletNet, RelationNet): label inference → encoder training
// (subclass hook) → logistic regression on the learned embeddings. Using a
// pluggable LabelSource also yields the group-3 two-stage combinations
// (e.g. TripletNet+GLAD) for free.

#ifndef RLL_BASELINES_DEEP_BASELINE_H_
#define RLL_BASELINES_DEEP_BASELINE_H_

#include <string>
#include <vector>

#include "baselines/label_source.h"
#include "baselines/method.h"
#include "classify/logistic_regression.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace rll::baselines {

struct DeepBaselineOptions {
  /// Encoder hidden widths; last entry is the embedding dimension.
  std::vector<size_t> hidden_dims = {64, 32};
  nn::Activation hidden_activation = nn::Activation::kTanh;
  nn::Activation output_activation = nn::Activation::kTanh;
  int epochs = 20;
  /// Pairs (Siamese/Relation) or triplets (Triplet) sampled per epoch.
  size_t samples_per_epoch = 1024;
  size_t batch_size = 64;
  /// Margin for contrastive/triplet losses (embeddings live in [-1,1]^d).
  double margin = 1.0;
  nn::AdamOptions adam = {.lr = 2e-3, .weight_decay = 1e-4};
  /// Where training labels come from (majority vote per the paper for
  /// group 2; EM/GLAD for the group-3 combinations).
  LabelSource label_source = LabelSource::kMajorityVote;
  classify::LogisticRegressionOptions classifier;
};

class DeepBaselineMethod : public Method {
 public:
  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

  std::string name() const override;
  std::string group() const override;

 protected:
  DeepBaselineMethod(std::string base_name, DeepBaselineOptions options)
      : base_name_(std::move(base_name)), options_(std::move(options)) {}

  /// Subclass hook: train `encoder` on (features, labels).
  virtual Status TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                              const std::vector<int>& labels,
                              Rng* rng) const = 0;

  nn::MlpConfig EncoderConfig(size_t input_dim) const;

  /// Fails unless both classes have at least two members — every metric
  /// loss here needs same-class pairs and cross-class contrast.
  static Status CheckTwoClasses(const std::vector<int>& labels);

  std::string base_name_;
  DeepBaselineOptions options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_DEEP_BASELINE_H_
