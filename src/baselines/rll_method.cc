#include "baselines/rll_method.h"

namespace rll::baselines {

std::string RllVariantMethod::name() const {
  switch (options_.trainer.confidence_mode) {
    case crowd::ConfidenceMode::kNone:
      return "RLL";
    case crowd::ConfidenceMode::kMle:
      return "RLL+MLE";
    case crowd::ConfidenceMode::kBayesian:
      return "RLL+Bayesian";
    case crowd::ConfidenceMode::kWorkerAware:
      return "RLL+WorkerAware";
  }
  return "RLL?";
}

Result<std::vector<int>> RllVariantMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features,
    Rng* rng) const {
  return core::TrainRllAndPredict(train, test_features, options_, rng);
}

}  // namespace rll::baselines
