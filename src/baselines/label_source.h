// Pluggable hard-label inference for training-time supervision. Group 2
// baselines use majority vote (as in the paper); group 3 two-stage methods
// swap in Dawid–Skene EM or GLAD.

#ifndef RLL_BASELINES_LABEL_SOURCE_H_
#define RLL_BASELINES_LABEL_SOURCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rll::baselines {

enum class LabelSource {
  kMajorityVote,
  kDawidSkene,
  kGlad,
};

const char* LabelSourceName(LabelSource source);

/// Infers one hard label per example from the dataset's crowd annotations.
Result<std::vector<int>> InferLabels(const data::Dataset& dataset,
                                     LabelSource source);

}  // namespace rll::baselines

#endif  // RLL_BASELINES_LABEL_SOURCE_H_
