// Builds the full roster of Table I methods (15 rows across 4 groups) with
// consistent hyperparameters, so benchmark binaries and tests iterate one
// list instead of hand-wiring each method.

#ifndef RLL_BASELINES_REGISTRY_H_
#define RLL_BASELINES_REGISTRY_H_

#include <memory>
#include <vector>

#include "baselines/deep_baseline.h"
#include "baselines/method.h"
#include "core/pipeline.h"

namespace rll::baselines {

struct RegistryOptions {
  DeepBaselineOptions deep;
  core::RllPipelineOptions rll;
  classify::LogisticRegressionOptions lr;
};

/// Reasonable defaults for the paper-scale datasets (hundreds of examples,
/// 60–80 features).
RegistryOptions DefaultRegistryOptions();

/// All 15 Table I rows, in paper order:
/// group 1: SoftProb, EM, GLAD;
/// group 2: SiameseNet, TripletNet, RelationNet (majority-vote labels);
/// group 3: {Siamese,Triplet,Relation} × {EM, GLAD};
/// group 4: RLL, RLL+MLE, RLL+Bayesian.
std::vector<std::unique_ptr<Method>> BuildTableOneMethods(
    const RegistryOptions& options = DefaultRegistryOptions());

}  // namespace rll::baselines

#endif  // RLL_BASELINES_REGISTRY_H_
