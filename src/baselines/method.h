// Uniform interface for every row of Table I — group 1 (label inference +
// LR), group 2 (metric learners on majority-vote labels), group 3
// (two-stage combinations), and group 4 (RLL variants) — plus the shared
// cross-validation harness that evaluates them identically.

#ifndef RLL_BASELINES_METHOD_H_
#define RLL_BASELINES_METHOD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace rll::baselines {

class Method {
 public:
  virtual ~Method() = default;

  /// Row label, e.g. "TripletNet+GLAD".
  virtual std::string name() const = 0;
  /// Paper grouping, e.g. "group 3".
  virtual std::string group() const = 0;

  /// Trains on the crowd-annotated `train` split (expert labels are present
  /// in the dataset but implementations must not read them) and predicts
  /// 0/1 labels for `test_features` (standardized like train.features()).
  virtual Result<std::vector<int>> TrainAndPredict(
      const data::Dataset& train, const Matrix& test_features,
      Rng* rng) const = 0;
};

/// Stratified k-fold cross-validation of any Method, mirroring the paper's
/// protocol: standardize per fold on train only, train on crowd labels,
/// score predictions against expert labels.
Result<core::CvOutcome> CrossValidateMethod(const data::Dataset& dataset,
                                            const Method& method,
                                            size_t folds, Rng* rng,
                                            bool standardize = true);

}  // namespace rll::baselines

#endif  // RLL_BASELINES_METHOD_H_
