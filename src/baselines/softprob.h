// SoftProb (Raykar et al., JMLR 2010 flavor as used in the paper's group 1):
// logistic regression treating every (instance, crowd label) pair as a
// separate training example. With equal per-vote weights this is exactly
// logistic regression on soft targets equal to each example's positive-vote
// fraction, which is how we implement it (identical gradient, d× cheaper).

#ifndef RLL_BASELINES_SOFTPROB_H_
#define RLL_BASELINES_SOFTPROB_H_

#include "baselines/method.h"
#include "classify/logistic_regression.h"

namespace rll::baselines {

class SoftProbMethod : public Method {
 public:
  explicit SoftProbMethod(classify::LogisticRegressionOptions options = {})
      : options_(options) {}

  std::string name() const override { return "SoftProb"; }
  std::string group() const override { return "group 1"; }

  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

 private:
  classify::LogisticRegressionOptions options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_SOFTPROB_H_
