#include "baselines/siamese.h"

#include "autograd/ops.h"
#include "baselines/pair_sampling.h"

namespace rll::baselines {

Status SiameseMethod::TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                                   const std::vector<int>& labels,
                                   Rng* rng) const {
  const ClassIndex index = BuildClassIndex(labels);
  nn::Adam optimizer(encoder->Parameters(), options_.adam);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t start = 0; start < options_.samples_per_epoch;
         start += options_.batch_size) {
      const size_t batch = std::min(options_.batch_size,
                                    options_.samples_per_epoch - start);
      std::vector<size_t> left(batch), right(batch);
      Matrix same(batch, 1), diff(batch, 1);
      for (size_t b = 0; b < batch; ++b) {
        const Pair pair = SamplePair(index, rng);
        left[b] = pair.first;
        right[b] = pair.second;
        same(b, 0) = pair.same_class ? 1.0 : 0.0;
        diff(b, 0) = pair.same_class ? 0.0 : 1.0;
      }

      ag::Var e1 = encoder->Forward(ag::Constant(features.GatherRows(left)));
      ag::Var e2 = encoder->Forward(ag::Constant(features.GatherRows(right)));
      // d² per pair, then contrastive loss
      //   y·d² + (1−y)·relu(margin − d)².
      ag::Var d2 = ag::RowSum(ag::Square(ag::Sub(e1, e2)));
      ag::Var d = ag::Sqrt(d2);
      ag::Var pull = ag::Mul(ag::Constant(same), d2);
      ag::Var hinge =
          ag::Relu(ag::AddScalar(ag::Scale(d, -1.0), options_.margin));
      ag::Var push = ag::Mul(ag::Constant(diff), ag::Square(hinge));
      ag::Var loss = ag::Mean(ag::Add(pull, push));

      optimizer.ZeroGrad();
      ag::Backward(loss);
      optimizer.Step();
    }
  }
  return Status::OK();
}

}  // namespace rll::baselines
