// Group-1 baselines "EM" and "GLAD": infer hard labels with a crowd
// aggregator, then fit logistic regression on raw features.

#ifndef RLL_BASELINES_AGGREGATED_LR_H_
#define RLL_BASELINES_AGGREGATED_LR_H_

#include "baselines/label_source.h"
#include "baselines/method.h"
#include "classify/logistic_regression.h"

namespace rll::baselines {

class AggregatedLrMethod : public Method {
 public:
  AggregatedLrMethod(LabelSource source,
                     classify::LogisticRegressionOptions options = {})
      : source_(source), options_(options) {}

  std::string name() const override { return LabelSourceName(source_); }
  std::string group() const override { return "group 1"; }

  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

 private:
  LabelSource source_;
  classify::LogisticRegressionOptions options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_AGGREGATED_LR_H_
