#include "baselines/raykar.h"

#include <cmath>

#include "crowd/aggregator.h"

namespace rll::baselines {

Result<RaykarModel> FitRaykar(const data::Dataset& train,
                              const RaykarOptions& options) {
  RLL_RETURN_IF_ERROR(crowd::CheckAnnotated(train));
  const size_t n = train.size();
  const size_t num_workers = train.NumWorkers();

  RaykarModel model;
  model.posterior.resize(n);
  for (size_t i = 0; i < n; ++i) {
    model.posterior[i] =
        static_cast<double>(train.PositiveVotes(i)) /
        static_cast<double>(train.annotations(i).size());
  }
  model.sensitivity.assign(num_workers, 0.7);
  model.specificity.assign(num_workers, 0.7);

  for (model.iterations = 0;
       model.iterations < options.max_em_iterations; ++model.iterations) {
    // ---- M-step 1: worker parameters from posterior-weighted counts.
    std::vector<double> sens_num(num_workers, options.smoothing);
    std::vector<double> sens_den(num_workers, 2.0 * options.smoothing);
    std::vector<double> spec_num(num_workers, options.smoothing);
    std::vector<double> spec_den(num_workers, 2.0 * options.smoothing);
    for (size_t i = 0; i < n; ++i) {
      const double p = model.posterior[i];
      for (const data::Annotation& a : train.annotations(i)) {
        sens_den[a.worker_id] += p;
        spec_den[a.worker_id] += 1.0 - p;
        if (a.label == 1) {
          sens_num[a.worker_id] += p;
        } else {
          spec_num[a.worker_id] += 1.0 - p;
        }
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      model.sensitivity[w] = sens_num[w] / sens_den[w];
      model.specificity[w] = spec_num[w] / spec_den[w];
    }

    // ---- M-step 2: classifier on soft targets.
    classify::LogisticRegression lr(options.classifier);
    RLL_RETURN_IF_ERROR(lr.Fit(train.features(), model.posterior));
    model.classifier = lr;

    // ---- E-step: posterior from classifier prior × vote likelihoods.
    const std::vector<double> prior =
        model.classifier.PredictProba(train.features());
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double pi = std::min(std::max(prior[i], 1e-9), 1.0 - 1e-9);
      double log1 = std::log(pi);
      double log0 = std::log(1.0 - pi);
      for (const data::Annotation& a : train.annotations(i)) {
        const double sens =
            std::min(std::max(model.sensitivity[a.worker_id], 1e-6),
                     1.0 - 1e-6);
        const double spec =
            std::min(std::max(model.specificity[a.worker_id], 1e-6),
                     1.0 - 1e-6);
        if (a.label == 1) {
          log1 += std::log(sens);
          log0 += std::log(1.0 - spec);
        } else {
          log1 += std::log(1.0 - sens);
          log0 += std::log(spec);
        }
      }
      const double mx = std::max(log0, log1);
      const double z = std::exp(log0 - mx) + std::exp(log1 - mx);
      const double p1 = std::exp(log1 - mx) / z;
      max_delta = std::max(max_delta, std::fabs(p1 - model.posterior[i]));
      model.posterior[i] = p1;
    }
    if (max_delta < options.tolerance) {
      model.converged = true;
      ++model.iterations;
      break;
    }
  }
  return model;
}

Result<std::vector<int>> RaykarMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features,
    Rng* /*rng*/) const {
  RLL_ASSIGN_OR_RETURN(RaykarModel model, FitRaykar(train, options_));
  return model.classifier.Predict(test_features);
}

}  // namespace rll::baselines
