// Pair/triplet sampling utilities shared by the metric-learning baselines.

#ifndef RLL_BASELINES_PAIR_SAMPLING_H_
#define RLL_BASELINES_PAIR_SAMPLING_H_

#include <vector>

#include "common/rng.h"

namespace rll::baselines {

/// Example indices split by (inferred) class.
struct ClassIndex {
  std::vector<size_t> pos;
  std::vector<size_t> neg;
};

inline ClassIndex BuildClassIndex(const std::vector<int>& labels) {
  ClassIndex index;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == 1 ? index.pos : index.neg).push_back(i);
  }
  return index;
}

/// Two distinct indices uniformly from `members` (requires size >= 2).
inline std::pair<size_t, size_t> SampleDistinctPair(
    const std::vector<size_t>& members, Rng* rng) {
  RLL_CHECK_GE(members.size(), 2u);
  const size_t a = static_cast<size_t>(rng->UniformInt(members.size()));
  const size_t offset =
      1 + static_cast<size_t>(rng->UniformInt(members.size() - 1));
  return {members[a], members[(a + offset) % members.size()]};
}

struct Pair {
  size_t first;
  size_t second;
  bool same_class;
};

/// Balanced pair: with probability 1/2 a same-class pair (class chosen
/// uniformly), otherwise one member of each class.
inline Pair SamplePair(const ClassIndex& index, Rng* rng) {
  if (rng->Bernoulli(0.5)) {
    const std::vector<size_t>& members =
        rng->Bernoulli(0.5) ? index.pos : index.neg;
    auto [a, b] = SampleDistinctPair(members, rng);
    return {a, b, true};
  }
  const size_t p =
      index.pos[static_cast<size_t>(rng->UniformInt(index.pos.size()))];
  const size_t n =
      index.neg[static_cast<size_t>(rng->UniformInt(index.neg.size()))];
  return {p, n, false};
}

struct Triplet {
  size_t anchor;
  size_t positive;  // Same class as anchor.
  size_t negative;  // Other class.
};

/// Anchor class chosen uniformly; positive is a distinct same-class
/// example, negative comes from the other class.
inline Triplet SampleTriplet(const ClassIndex& index, Rng* rng) {
  const bool anchor_is_pos = rng->Bernoulli(0.5);
  const std::vector<size_t>& same = anchor_is_pos ? index.pos : index.neg;
  const std::vector<size_t>& other = anchor_is_pos ? index.neg : index.pos;
  auto [anchor, positive] = SampleDistinctPair(same, rng);
  const size_t negative =
      other[static_cast<size_t>(rng->UniformInt(other.size()))];
  return {anchor, positive, negative};
}

}  // namespace rll::baselines

#endif  // RLL_BASELINES_PAIR_SAMPLING_H_
