// TripletNet (FaceNet-style, Schroff et al. 2015): anchor/positive/negative
// triplets with a margin hinge on squared distances.

#ifndef RLL_BASELINES_TRIPLET_H_
#define RLL_BASELINES_TRIPLET_H_

#include "baselines/deep_baseline.h"

namespace rll::baselines {

class TripletMethod : public DeepBaselineMethod {
 public:
  explicit TripletMethod(DeepBaselineOptions options = {})
      : DeepBaselineMethod("TripletNet", std::move(options)) {}

 protected:
  /// Triplet loss: mean relu(d(a,p)² − d(a,n)² + margin), triplets
  /// resampled every epoch.
  Status TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                      const std::vector<int>& labels,
                      Rng* rng) const override;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_TRIPLET_H_
