// Raykar et al., "Learning from Crowds" (JMLR 2010) — the full joint EM
// behind the paper's SoftProb reference [20]: latent true labels, per-worker
// sensitivity/specificity, and a logistic-regression classifier are
// estimated together. The classifier acts as the prior in the E-step, so
// feature information disambiguates split votes and vote information
// calibrates the workers.
//
//   E-step: p_i = P(z_i=1 | x_i, votes) ∝ σ(wᵀx_i)·Π_w sens/spec terms
//   M-step: sensitivity_w, specificity_w from posterior-weighted counts;
//           w from logistic regression on soft targets p_i.

#ifndef RLL_BASELINES_RAYKAR_H_
#define RLL_BASELINES_RAYKAR_H_

#include <vector>

#include "baselines/method.h"
#include "classify/logistic_regression.h"

namespace rll::baselines {

struct RaykarOptions {
  int max_em_iterations = 30;
  /// Converged when max |Δposterior| < tolerance.
  double tolerance = 1e-4;
  /// Laplace smoothing on the sensitivity/specificity counts.
  double smoothing = 0.5;
  classify::LogisticRegressionOptions classifier;
};

struct RaykarModel {
  std::vector<double> sensitivity;       // Per worker, P(vote 1 | z = 1).
  std::vector<double> specificity;       // Per worker, P(vote 0 | z = 0).
  std::vector<double> posterior;         // Per example, P(z = 1).
  classify::LogisticRegression classifier;
  int iterations = 0;
  bool converged = false;
};

/// Runs the joint EM on a crowd-annotated dataset. Fails when any example
/// lacks annotations or the classifier fit fails.
Result<RaykarModel> FitRaykar(const data::Dataset& train,
                              const RaykarOptions& options = {});

/// Table-I-style wrapper: fit on the train split, predict with the jointly
/// learned classifier. An extension row beyond the paper's 15 methods.
class RaykarMethod : public Method {
 public:
  explicit RaykarMethod(RaykarOptions options = {})
      : options_(std::move(options)) {}

  std::string name() const override { return "Raykar"; }
  std::string group() const override { return "group 1"; }

  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

 private:
  RaykarOptions options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_RAYKAR_H_
