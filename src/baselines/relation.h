// RelationNet (Sung et al., CVPR 2018 flavor): a learned deep distance —
// a relation MLP scores concatenated embedding pairs; trained with MSE to
// 1 for same-class and 0 for different-class pairs. The encoder trained
// jointly with the relation head provides the representation.

#ifndef RLL_BASELINES_RELATION_H_
#define RLL_BASELINES_RELATION_H_

#include "baselines/deep_baseline.h"

namespace rll::baselines {

class RelationMethod : public DeepBaselineMethod {
 public:
  explicit RelationMethod(DeepBaselineOptions options = {},
                          std::vector<size_t> relation_hidden = {32})
      : DeepBaselineMethod("RelationNet", std::move(options)),
        relation_hidden_(std::move(relation_hidden)) {}

 protected:
  Status TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                      const std::vector<int>& labels,
                      Rng* rng) const override;

 private:
  std::vector<size_t> relation_hidden_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_RELATION_H_
