#include "baselines/triplet.h"

#include "autograd/ops.h"
#include "baselines/pair_sampling.h"

namespace rll::baselines {

Status TripletMethod::TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                                   const std::vector<int>& labels,
                                   Rng* rng) const {
  const ClassIndex index = BuildClassIndex(labels);
  nn::Adam optimizer(encoder->Parameters(), options_.adam);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t start = 0; start < options_.samples_per_epoch;
         start += options_.batch_size) {
      const size_t batch = std::min(options_.batch_size,
                                    options_.samples_per_epoch - start);
      std::vector<size_t> anchors(batch), positives(batch), negatives(batch);
      for (size_t b = 0; b < batch; ++b) {
        const Triplet t = SampleTriplet(index, rng);
        anchors[b] = t.anchor;
        positives[b] = t.positive;
        negatives[b] = t.negative;
      }

      ag::Var ea =
          encoder->Forward(ag::Constant(features.GatherRows(anchors)));
      ag::Var ep =
          encoder->Forward(ag::Constant(features.GatherRows(positives)));
      ag::Var en =
          encoder->Forward(ag::Constant(features.GatherRows(negatives)));
      ag::Var d_ap = ag::RowSum(ag::Square(ag::Sub(ea, ep)));
      ag::Var d_an = ag::RowSum(ag::Square(ag::Sub(ea, en)));
      ag::Var loss = ag::Mean(
          ag::Relu(ag::AddScalar(ag::Sub(d_ap, d_an), options_.margin)));

      optimizer.ZeroGrad();
      ag::Backward(loss);
      optimizer.Step();
    }
  }
  return Status::OK();
}

}  // namespace rll::baselines
