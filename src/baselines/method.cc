#include "baselines/method.h"

#include "common/threading.h"
#include "data/kfold.h"
#include "data/standardize.h"

namespace rll::baselines {

Result<core::CvOutcome> CrossValidateMethod(const data::Dataset& dataset,
                                            const Method& method,
                                            size_t folds, Rng* rng,
                                            bool standardize) {
  if (!dataset.FullyAnnotated()) {
    return Status::FailedPrecondition(
        "dataset must be crowd-annotated before evaluation");
  }
  const std::vector<data::Split> splits =
      data::StratifiedKFold(dataset.true_labels(), folds, rng);
  // Same fold-dispatch scheme as RunRllCrossValidation: one pool task per
  // fold, each with a private SplitSeed-derived Rng and its own result
  // slot, so methods evaluated through either harness agree exactly.
  const uint64_t base_seed = rng->Next();

  std::vector<Result<classify::EvalMetrics>> fold_results(
      splits.size(), Status::Internal("fold not run"));
  ParallelFor(0, splits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t fold = lo; fold < hi; ++fold) {
      const data::Split& split = splits[fold];
      data::Dataset train = dataset.Subset(split.train);
      const data::Dataset test = dataset.Subset(split.test);

      Matrix train_features = train.features();
      Matrix test_features = test.features();
      if (standardize) {
        data::Standardizer standardizer;
        train_features = standardizer.FitTransform(train_features);
        test_features = standardizer.Transform(test_features);
      }
      data::Dataset train_std(std::move(train_features), train.true_labels());
      for (size_t i = 0; i < train.size(); ++i) {
        for (const data::Annotation& a : train.annotations(i)) {
          train_std.AddAnnotation(i, a);
        }
      }

      Rng fold_rng(SplitSeed(base_seed, fold));
      Result<std::vector<int>> predicted =
          method.TrainAndPredict(train_std, test_features, &fold_rng);
      if (!predicted.ok()) {
        fold_results[fold] = predicted.status();
        continue;
      }
      if (predicted->size() != test.size()) {
        fold_results[fold] = Status::Internal(
            method.name() + " returned wrong prediction count");
        continue;
      }
      fold_results[fold] = classify::Evaluate(test.true_labels(), *predicted);
    }
  });

  core::CvOutcome outcome;
  for (Result<classify::EvalMetrics>& result : fold_results) {
    RLL_RETURN_IF_ERROR(result.status());
    outcome.per_fold.push_back(std::move(*result));
  }
  outcome.mean = classify::MeanMetrics(outcome.per_fold);
  outcome.stddev = classify::StdDevMetrics(outcome.per_fold);
  return outcome;
}

}  // namespace rll::baselines
