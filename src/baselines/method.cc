#include "baselines/method.h"

#include "data/kfold.h"
#include "data/standardize.h"

namespace rll::baselines {

Result<core::CvOutcome> CrossValidateMethod(const data::Dataset& dataset,
                                            const Method& method,
                                            size_t folds, Rng* rng,
                                            bool standardize) {
  if (!dataset.FullyAnnotated()) {
    return Status::FailedPrecondition(
        "dataset must be crowd-annotated before evaluation");
  }
  const std::vector<data::Split> splits =
      data::StratifiedKFold(dataset.true_labels(), folds, rng);

  core::CvOutcome outcome;
  for (const data::Split& split : splits) {
    data::Dataset train = dataset.Subset(split.train);
    const data::Dataset test = dataset.Subset(split.test);

    Matrix train_features = train.features();
    Matrix test_features = test.features();
    if (standardize) {
      data::Standardizer standardizer;
      train_features = standardizer.FitTransform(train_features);
      test_features = standardizer.Transform(test_features);
    }
    data::Dataset train_std(std::move(train_features), train.true_labels());
    for (size_t i = 0; i < train.size(); ++i) {
      for (const data::Annotation& a : train.annotations(i)) {
        train_std.AddAnnotation(i, a);
      }
    }

    RLL_ASSIGN_OR_RETURN(
        std::vector<int> predicted,
        method.TrainAndPredict(train_std, test_features, rng));
    if (predicted.size() != test.size()) {
      return Status::Internal(method.name() +
                              " returned wrong prediction count");
    }
    outcome.per_fold.push_back(
        classify::Evaluate(test.true_labels(), predicted));
  }
  outcome.mean = classify::MeanMetrics(outcome.per_fold);
  outcome.stddev = classify::StdDevMetrics(outcome.per_fold);
  return outcome;
}

}  // namespace rll::baselines
