// SiameseNet (Koch et al., 2015 flavor): twin encoders with contrastive
// loss — same-class pairs pulled together, different-class pairs pushed
// beyond a margin.

#ifndef RLL_BASELINES_SIAMESE_H_
#define RLL_BASELINES_SIAMESE_H_

#include "baselines/deep_baseline.h"

namespace rll::baselines {

class SiameseMethod : public DeepBaselineMethod {
 public:
  explicit SiameseMethod(DeepBaselineOptions options = {})
      : DeepBaselineMethod("SiameseNet", std::move(options)) {}

 protected:
  /// Contrastive loss: mean( y·d² + (1−y)·relu(margin − d)² ) over balanced
  /// same/different pairs resampled every epoch.
  Status TrainEncoder(nn::Mlp* encoder, const Matrix& features,
                      const std::vector<int>& labels,
                      Rng* rng) const override;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_SIAMESE_H_
