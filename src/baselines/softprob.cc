#include "baselines/softprob.h"

namespace rll::baselines {

Result<std::vector<int>> SoftProbMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features,
    Rng* /*rng*/) const {
  if (!train.FullyAnnotated()) {
    return Status::FailedPrecondition("SoftProb needs crowd annotations");
  }
  std::vector<double> soft_targets(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    soft_targets[i] = static_cast<double>(train.PositiveVotes(i)) /
                      static_cast<double>(train.annotations(i).size());
  }
  classify::LogisticRegression lr(options_);
  RLL_RETURN_IF_ERROR(lr.Fit(train.features(), soft_targets));
  return lr.Predict(test_features);
}

}  // namespace rll::baselines
