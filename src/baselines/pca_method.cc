#include "baselines/pca_method.h"

#include <algorithm>

namespace rll::baselines {

Result<std::vector<int>> PcaMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features,
    Rng* /*rng*/) const {
  if (!train.FullyAnnotated()) {
    return Status::FailedPrecondition("PCA baseline needs crowd labels");
  }
  classify::PcaOptions pca_options = pca_options_;
  pca_options.num_components =
      std::min(pca_options.num_components, train.dim());

  classify::Pca pca(pca_options);
  RLL_ASSIGN_OR_RETURN(Matrix train_proj, pca.FitTransform(train.features()));
  const Matrix test_proj = pca.Transform(test_features);

  classify::LogisticRegression lr(lr_options_);
  RLL_RETURN_IF_ERROR(lr.Fit(train_proj, train.MajorityVoteLabels()));
  return lr.Predict(test_proj);
}

}  // namespace rll::baselines
