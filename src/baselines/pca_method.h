// PCA+LR: unsupervised projection to the RLL embedding dimensionality,
// logistic regression on top (majority-vote labels). Not in the paper's
// Table I — included as the label-free control: any gap between this row
// and the group-2/4 methods is what the crowd labels contribute to the
// representation itself.

#ifndef RLL_BASELINES_PCA_METHOD_H_
#define RLL_BASELINES_PCA_METHOD_H_

#include "baselines/method.h"
#include "classify/logistic_regression.h"
#include "classify/pca.h"

namespace rll::baselines {

class PcaMethod : public Method {
 public:
  explicit PcaMethod(classify::PcaOptions pca_options = {.num_components = 32},
                     classify::LogisticRegressionOptions lr_options = {})
      : pca_options_(pca_options), lr_options_(lr_options) {}

  std::string name() const override { return "PCA"; }
  std::string group() const override { return "control"; }

  Result<std::vector<int>> TrainAndPredict(const data::Dataset& train,
                                           const Matrix& test_features,
                                           Rng* rng) const override;

 private:
  classify::PcaOptions pca_options_;
  classify::LogisticRegressionOptions lr_options_;
};

}  // namespace rll::baselines

#endif  // RLL_BASELINES_PCA_METHOD_H_
