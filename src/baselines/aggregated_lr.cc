#include "baselines/aggregated_lr.h"

namespace rll::baselines {

Result<std::vector<int>> AggregatedLrMethod::TrainAndPredict(
    const data::Dataset& train, const Matrix& test_features,
    Rng* /*rng*/) const {
  RLL_ASSIGN_OR_RETURN(std::vector<int> labels, InferLabels(train, source_));
  classify::LogisticRegression lr(options_);
  RLL_RETURN_IF_ERROR(lr.Fit(train.features(), labels));
  return lr.Predict(test_features);
}

}  // namespace rll::baselines
