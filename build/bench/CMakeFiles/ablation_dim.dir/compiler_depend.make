# Empty compiler generated dependencies file for ablation_dim.
# This may be replaced when dependencies are built.
