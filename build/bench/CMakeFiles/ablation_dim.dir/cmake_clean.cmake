file(REMOVE_RECURSE
  "CMakeFiles/ablation_dim.dir/ablation_dim.cc.o"
  "CMakeFiles/ablation_dim.dir/ablation_dim.cc.o.d"
  "ablation_dim"
  "ablation_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
