# Empty dependencies file for robustness_collusion.
# This may be replaced when dependencies are built.
