file(REMOVE_RECURSE
  "CMakeFiles/robustness_collusion.dir/robustness_collusion.cc.o"
  "CMakeFiles/robustness_collusion.dir/robustness_collusion.cc.o.d"
  "robustness_collusion"
  "robustness_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
