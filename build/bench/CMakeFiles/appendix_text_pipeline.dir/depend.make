# Empty dependencies file for appendix_text_pipeline.
# This may be replaced when dependencies are built.
