file(REMOVE_RECURSE
  "CMakeFiles/appendix_text_pipeline.dir/appendix_text_pipeline.cc.o"
  "CMakeFiles/appendix_text_pipeline.dir/appendix_text_pipeline.cc.o.d"
  "appendix_text_pipeline"
  "appendix_text_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
