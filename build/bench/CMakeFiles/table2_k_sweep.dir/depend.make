# Empty dependencies file for table2_k_sweep.
# This may be replaced when dependencies are built.
