file(REMOVE_RECURSE
  "CMakeFiles/table2_k_sweep.dir/table2_k_sweep.cc.o"
  "CMakeFiles/table2_k_sweep.dir/table2_k_sweep.cc.o.d"
  "table2_k_sweep"
  "table2_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
