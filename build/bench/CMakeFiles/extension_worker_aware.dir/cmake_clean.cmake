file(REMOVE_RECURSE
  "CMakeFiles/extension_worker_aware.dir/extension_worker_aware.cc.o"
  "CMakeFiles/extension_worker_aware.dir/extension_worker_aware.cc.o.d"
  "extension_worker_aware"
  "extension_worker_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_worker_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
