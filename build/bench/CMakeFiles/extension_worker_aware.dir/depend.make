# Empty dependencies file for extension_worker_aware.
# This may be replaced when dependencies are built.
