file(REMOVE_RECURSE
  "CMakeFiles/ablation_prior.dir/ablation_prior.cc.o"
  "CMakeFiles/ablation_prior.dir/ablation_prior.cc.o.d"
  "ablation_prior"
  "ablation_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
