# Empty dependencies file for ablation_workers.
# This may be replaced when dependencies are built.
