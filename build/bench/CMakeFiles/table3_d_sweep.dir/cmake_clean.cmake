file(REMOVE_RECURSE
  "CMakeFiles/table3_d_sweep.dir/table3_d_sweep.cc.o"
  "CMakeFiles/table3_d_sweep.dir/table3_d_sweep.cc.o.d"
  "table3_d_sweep"
  "table3_d_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_d_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
