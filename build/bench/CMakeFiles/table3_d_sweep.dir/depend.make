# Empty dependencies file for table3_d_sweep.
# This may be replaced when dependencies are built.
