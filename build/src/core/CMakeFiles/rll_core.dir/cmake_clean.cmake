file(REMOVE_RECURSE
  "CMakeFiles/rll_core.dir/embedding_eval.cc.o"
  "CMakeFiles/rll_core.dir/embedding_eval.cc.o.d"
  "CMakeFiles/rll_core.dir/embedding_index.cc.o"
  "CMakeFiles/rll_core.dir/embedding_index.cc.o.d"
  "CMakeFiles/rll_core.dir/group_sampler.cc.o"
  "CMakeFiles/rll_core.dir/group_sampler.cc.o.d"
  "CMakeFiles/rll_core.dir/model_bundle.cc.o"
  "CMakeFiles/rll_core.dir/model_bundle.cc.o.d"
  "CMakeFiles/rll_core.dir/pipeline.cc.o"
  "CMakeFiles/rll_core.dir/pipeline.cc.o.d"
  "CMakeFiles/rll_core.dir/rll_model.cc.o"
  "CMakeFiles/rll_core.dir/rll_model.cc.o.d"
  "CMakeFiles/rll_core.dir/rll_trainer.cc.o"
  "CMakeFiles/rll_core.dir/rll_trainer.cc.o.d"
  "CMakeFiles/rll_core.dir/tuning.cc.o"
  "CMakeFiles/rll_core.dir/tuning.cc.o.d"
  "librll_core.a"
  "librll_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
