# Empty compiler generated dependencies file for rll_core.
# This may be replaced when dependencies are built.
