file(REMOVE_RECURSE
  "librll_core.a"
)
