
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedding_eval.cc" "src/core/CMakeFiles/rll_core.dir/embedding_eval.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/embedding_eval.cc.o.d"
  "/root/repo/src/core/embedding_index.cc" "src/core/CMakeFiles/rll_core.dir/embedding_index.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/embedding_index.cc.o.d"
  "/root/repo/src/core/group_sampler.cc" "src/core/CMakeFiles/rll_core.dir/group_sampler.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/group_sampler.cc.o.d"
  "/root/repo/src/core/model_bundle.cc" "src/core/CMakeFiles/rll_core.dir/model_bundle.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/model_bundle.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/rll_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/rll_model.cc" "src/core/CMakeFiles/rll_core.dir/rll_model.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/rll_model.cc.o.d"
  "/root/repo/src/core/rll_trainer.cc" "src/core/CMakeFiles/rll_core.dir/rll_trainer.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/rll_trainer.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/rll_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/rll_core.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/rll_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/rll_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/rll_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rll_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
