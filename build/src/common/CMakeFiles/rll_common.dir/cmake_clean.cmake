file(REMOVE_RECURSE
  "CMakeFiles/rll_common.dir/logging.cc.o"
  "CMakeFiles/rll_common.dir/logging.cc.o.d"
  "CMakeFiles/rll_common.dir/rng.cc.o"
  "CMakeFiles/rll_common.dir/rng.cc.o.d"
  "CMakeFiles/rll_common.dir/status.cc.o"
  "CMakeFiles/rll_common.dir/status.cc.o.d"
  "CMakeFiles/rll_common.dir/strings.cc.o"
  "CMakeFiles/rll_common.dir/strings.cc.o.d"
  "librll_common.a"
  "librll_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
