file(REMOVE_RECURSE
  "librll_common.a"
)
