# Empty compiler generated dependencies file for rll_common.
# This may be replaced when dependencies are built.
