file(REMOVE_RECURSE
  "CMakeFiles/rll_tensor.dir/init.cc.o"
  "CMakeFiles/rll_tensor.dir/init.cc.o.d"
  "CMakeFiles/rll_tensor.dir/matrix.cc.o"
  "CMakeFiles/rll_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/rll_tensor.dir/ops.cc.o"
  "CMakeFiles/rll_tensor.dir/ops.cc.o.d"
  "CMakeFiles/rll_tensor.dir/serialize.cc.o"
  "CMakeFiles/rll_tensor.dir/serialize.cc.o.d"
  "librll_tensor.a"
  "librll_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
