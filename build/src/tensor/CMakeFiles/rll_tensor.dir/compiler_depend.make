# Empty compiler generated dependencies file for rll_tensor.
# This may be replaced when dependencies are built.
