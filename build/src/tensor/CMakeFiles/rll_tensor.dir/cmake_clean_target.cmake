file(REMOVE_RECURSE
  "librll_tensor.a"
)
