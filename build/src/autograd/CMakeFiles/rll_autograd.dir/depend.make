# Empty dependencies file for rll_autograd.
# This may be replaced when dependencies are built.
