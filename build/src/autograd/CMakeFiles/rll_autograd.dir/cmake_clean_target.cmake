file(REMOVE_RECURSE
  "librll_autograd.a"
)
