file(REMOVE_RECURSE
  "CMakeFiles/rll_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/rll_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/rll_autograd.dir/ops.cc.o"
  "CMakeFiles/rll_autograd.dir/ops.cc.o.d"
  "CMakeFiles/rll_autograd.dir/variable.cc.o"
  "CMakeFiles/rll_autograd.dir/variable.cc.o.d"
  "librll_autograd.a"
  "librll_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
