file(REMOVE_RECURSE
  "librll_crowd.a"
)
