# Empty compiler generated dependencies file for rll_crowd.
# This may be replaced when dependencies are built.
