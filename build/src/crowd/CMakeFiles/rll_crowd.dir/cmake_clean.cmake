file(REMOVE_RECURSE
  "CMakeFiles/rll_crowd.dir/adaptive_annotation.cc.o"
  "CMakeFiles/rll_crowd.dir/adaptive_annotation.cc.o.d"
  "CMakeFiles/rll_crowd.dir/agreement.cc.o"
  "CMakeFiles/rll_crowd.dir/agreement.cc.o.d"
  "CMakeFiles/rll_crowd.dir/collusion.cc.o"
  "CMakeFiles/rll_crowd.dir/collusion.cc.o.d"
  "CMakeFiles/rll_crowd.dir/confidence.cc.o"
  "CMakeFiles/rll_crowd.dir/confidence.cc.o.d"
  "CMakeFiles/rll_crowd.dir/dawid_skene.cc.o"
  "CMakeFiles/rll_crowd.dir/dawid_skene.cc.o.d"
  "CMakeFiles/rll_crowd.dir/glad.cc.o"
  "CMakeFiles/rll_crowd.dir/glad.cc.o.d"
  "CMakeFiles/rll_crowd.dir/iwmv.cc.o"
  "CMakeFiles/rll_crowd.dir/iwmv.cc.o.d"
  "CMakeFiles/rll_crowd.dir/majority_vote.cc.o"
  "CMakeFiles/rll_crowd.dir/majority_vote.cc.o.d"
  "CMakeFiles/rll_crowd.dir/multiclass.cc.o"
  "CMakeFiles/rll_crowd.dir/multiclass.cc.o.d"
  "CMakeFiles/rll_crowd.dir/worker_pool.cc.o"
  "CMakeFiles/rll_crowd.dir/worker_pool.cc.o.d"
  "librll_crowd.a"
  "librll_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
