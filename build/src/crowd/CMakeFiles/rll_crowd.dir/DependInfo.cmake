
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/adaptive_annotation.cc" "src/crowd/CMakeFiles/rll_crowd.dir/adaptive_annotation.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/adaptive_annotation.cc.o.d"
  "/root/repo/src/crowd/agreement.cc" "src/crowd/CMakeFiles/rll_crowd.dir/agreement.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/agreement.cc.o.d"
  "/root/repo/src/crowd/collusion.cc" "src/crowd/CMakeFiles/rll_crowd.dir/collusion.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/collusion.cc.o.d"
  "/root/repo/src/crowd/confidence.cc" "src/crowd/CMakeFiles/rll_crowd.dir/confidence.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/confidence.cc.o.d"
  "/root/repo/src/crowd/dawid_skene.cc" "src/crowd/CMakeFiles/rll_crowd.dir/dawid_skene.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/dawid_skene.cc.o.d"
  "/root/repo/src/crowd/glad.cc" "src/crowd/CMakeFiles/rll_crowd.dir/glad.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/glad.cc.o.d"
  "/root/repo/src/crowd/iwmv.cc" "src/crowd/CMakeFiles/rll_crowd.dir/iwmv.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/iwmv.cc.o.d"
  "/root/repo/src/crowd/majority_vote.cc" "src/crowd/CMakeFiles/rll_crowd.dir/majority_vote.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/majority_vote.cc.o.d"
  "/root/repo/src/crowd/multiclass.cc" "src/crowd/CMakeFiles/rll_crowd.dir/multiclass.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/multiclass.cc.o.d"
  "/root/repo/src/crowd/worker_pool.cc" "src/crowd/CMakeFiles/rll_crowd.dir/worker_pool.cc.o" "gcc" "src/crowd/CMakeFiles/rll_crowd.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
