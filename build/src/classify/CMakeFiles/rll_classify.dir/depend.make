# Empty dependencies file for rll_classify.
# This may be replaced when dependencies are built.
