file(REMOVE_RECURSE
  "librll_classify.a"
)
