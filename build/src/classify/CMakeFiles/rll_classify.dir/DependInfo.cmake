
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/logistic_regression.cc" "src/classify/CMakeFiles/rll_classify.dir/logistic_regression.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/logistic_regression.cc.o.d"
  "/root/repo/src/classify/metrics.cc" "src/classify/CMakeFiles/rll_classify.dir/metrics.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/metrics.cc.o.d"
  "/root/repo/src/classify/pca.cc" "src/classify/CMakeFiles/rll_classify.dir/pca.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/pca.cc.o.d"
  "/root/repo/src/classify/ranking_metrics.cc" "src/classify/CMakeFiles/rll_classify.dir/ranking_metrics.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/ranking_metrics.cc.o.d"
  "/root/repo/src/classify/softmax_regression.cc" "src/classify/CMakeFiles/rll_classify.dir/softmax_regression.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/softmax_regression.cc.o.d"
  "/root/repo/src/classify/stats.cc" "src/classify/CMakeFiles/rll_classify.dir/stats.cc.o" "gcc" "src/classify/CMakeFiles/rll_classify.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
