file(REMOVE_RECURSE
  "CMakeFiles/rll_classify.dir/logistic_regression.cc.o"
  "CMakeFiles/rll_classify.dir/logistic_regression.cc.o.d"
  "CMakeFiles/rll_classify.dir/metrics.cc.o"
  "CMakeFiles/rll_classify.dir/metrics.cc.o.d"
  "CMakeFiles/rll_classify.dir/pca.cc.o"
  "CMakeFiles/rll_classify.dir/pca.cc.o.d"
  "CMakeFiles/rll_classify.dir/ranking_metrics.cc.o"
  "CMakeFiles/rll_classify.dir/ranking_metrics.cc.o.d"
  "CMakeFiles/rll_classify.dir/softmax_regression.cc.o"
  "CMakeFiles/rll_classify.dir/softmax_regression.cc.o.d"
  "CMakeFiles/rll_classify.dir/stats.cc.o"
  "CMakeFiles/rll_classify.dir/stats.cc.o.d"
  "librll_classify.a"
  "librll_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
