file(REMOVE_RECURSE
  "CMakeFiles/rll_data.dir/csv.cc.o"
  "CMakeFiles/rll_data.dir/csv.cc.o.d"
  "CMakeFiles/rll_data.dir/dataset.cc.o"
  "CMakeFiles/rll_data.dir/dataset.cc.o.d"
  "CMakeFiles/rll_data.dir/kfold.cc.o"
  "CMakeFiles/rll_data.dir/kfold.cc.o.d"
  "CMakeFiles/rll_data.dir/standardize.cc.o"
  "CMakeFiles/rll_data.dir/standardize.cc.o.d"
  "CMakeFiles/rll_data.dir/synthetic.cc.o"
  "CMakeFiles/rll_data.dir/synthetic.cc.o.d"
  "librll_data.a"
  "librll_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
