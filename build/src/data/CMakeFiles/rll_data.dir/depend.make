# Empty dependencies file for rll_data.
# This may be replaced when dependencies are built.
