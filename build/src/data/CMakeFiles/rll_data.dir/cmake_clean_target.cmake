file(REMOVE_RECURSE
  "librll_data.a"
)
