file(REMOVE_RECURSE
  "librll_text.a"
)
