file(REMOVE_RECURSE
  "CMakeFiles/rll_text.dir/linguistic_features.cc.o"
  "CMakeFiles/rll_text.dir/linguistic_features.cc.o.d"
  "CMakeFiles/rll_text.dir/text_dataset.cc.o"
  "CMakeFiles/rll_text.dir/text_dataset.cc.o.d"
  "CMakeFiles/rll_text.dir/transcript.cc.o"
  "CMakeFiles/rll_text.dir/transcript.cc.o.d"
  "CMakeFiles/rll_text.dir/vocabulary.cc.o"
  "CMakeFiles/rll_text.dir/vocabulary.cc.o.d"
  "librll_text.a"
  "librll_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
