
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/linguistic_features.cc" "src/text/CMakeFiles/rll_text.dir/linguistic_features.cc.o" "gcc" "src/text/CMakeFiles/rll_text.dir/linguistic_features.cc.o.d"
  "/root/repo/src/text/text_dataset.cc" "src/text/CMakeFiles/rll_text.dir/text_dataset.cc.o" "gcc" "src/text/CMakeFiles/rll_text.dir/text_dataset.cc.o.d"
  "/root/repo/src/text/transcript.cc" "src/text/CMakeFiles/rll_text.dir/transcript.cc.o" "gcc" "src/text/CMakeFiles/rll_text.dir/transcript.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/rll_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/rll_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
