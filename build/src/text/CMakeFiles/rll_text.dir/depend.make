# Empty dependencies file for rll_text.
# This may be replaced when dependencies are built.
