file(REMOVE_RECURSE
  "CMakeFiles/rll_nn.dir/batcher.cc.o"
  "CMakeFiles/rll_nn.dir/batcher.cc.o.d"
  "CMakeFiles/rll_nn.dir/layer_norm.cc.o"
  "CMakeFiles/rll_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/rll_nn.dir/linear.cc.o"
  "CMakeFiles/rll_nn.dir/linear.cc.o.d"
  "CMakeFiles/rll_nn.dir/mlp.cc.o"
  "CMakeFiles/rll_nn.dir/mlp.cc.o.d"
  "CMakeFiles/rll_nn.dir/optimizer.cc.o"
  "CMakeFiles/rll_nn.dir/optimizer.cc.o.d"
  "librll_nn.a"
  "librll_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
