
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batcher.cc" "src/nn/CMakeFiles/rll_nn.dir/batcher.cc.o" "gcc" "src/nn/CMakeFiles/rll_nn.dir/batcher.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/rll_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/rll_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/rll_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/rll_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/rll_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/rll_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/rll_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/rll_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/rll_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
