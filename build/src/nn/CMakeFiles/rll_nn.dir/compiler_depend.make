# Empty compiler generated dependencies file for rll_nn.
# This may be replaced when dependencies are built.
