file(REMOVE_RECURSE
  "librll_nn.a"
)
