
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aggregated_lr.cc" "src/baselines/CMakeFiles/rll_baselines.dir/aggregated_lr.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/aggregated_lr.cc.o.d"
  "/root/repo/src/baselines/deep_baseline.cc" "src/baselines/CMakeFiles/rll_baselines.dir/deep_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/deep_baseline.cc.o.d"
  "/root/repo/src/baselines/label_source.cc" "src/baselines/CMakeFiles/rll_baselines.dir/label_source.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/label_source.cc.o.d"
  "/root/repo/src/baselines/method.cc" "src/baselines/CMakeFiles/rll_baselines.dir/method.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/method.cc.o.d"
  "/root/repo/src/baselines/pca_method.cc" "src/baselines/CMakeFiles/rll_baselines.dir/pca_method.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/pca_method.cc.o.d"
  "/root/repo/src/baselines/raykar.cc" "src/baselines/CMakeFiles/rll_baselines.dir/raykar.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/raykar.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/rll_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/relation.cc" "src/baselines/CMakeFiles/rll_baselines.dir/relation.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/relation.cc.o.d"
  "/root/repo/src/baselines/rll_method.cc" "src/baselines/CMakeFiles/rll_baselines.dir/rll_method.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/rll_method.cc.o.d"
  "/root/repo/src/baselines/siamese.cc" "src/baselines/CMakeFiles/rll_baselines.dir/siamese.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/siamese.cc.o.d"
  "/root/repo/src/baselines/softprob.cc" "src/baselines/CMakeFiles/rll_baselines.dir/softprob.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/softprob.cc.o.d"
  "/root/repo/src/baselines/triplet.cc" "src/baselines/CMakeFiles/rll_baselines.dir/triplet.cc.o" "gcc" "src/baselines/CMakeFiles/rll_baselines.dir/triplet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rll_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rll_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/rll_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/rll_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
