# Empty compiler generated dependencies file for rll_baselines.
# This may be replaced when dependencies are built.
