file(REMOVE_RECURSE
  "librll_baselines.a"
)
