file(REMOVE_RECURSE
  "CMakeFiles/rll_baselines.dir/aggregated_lr.cc.o"
  "CMakeFiles/rll_baselines.dir/aggregated_lr.cc.o.d"
  "CMakeFiles/rll_baselines.dir/deep_baseline.cc.o"
  "CMakeFiles/rll_baselines.dir/deep_baseline.cc.o.d"
  "CMakeFiles/rll_baselines.dir/label_source.cc.o"
  "CMakeFiles/rll_baselines.dir/label_source.cc.o.d"
  "CMakeFiles/rll_baselines.dir/method.cc.o"
  "CMakeFiles/rll_baselines.dir/method.cc.o.d"
  "CMakeFiles/rll_baselines.dir/pca_method.cc.o"
  "CMakeFiles/rll_baselines.dir/pca_method.cc.o.d"
  "CMakeFiles/rll_baselines.dir/raykar.cc.o"
  "CMakeFiles/rll_baselines.dir/raykar.cc.o.d"
  "CMakeFiles/rll_baselines.dir/registry.cc.o"
  "CMakeFiles/rll_baselines.dir/registry.cc.o.d"
  "CMakeFiles/rll_baselines.dir/relation.cc.o"
  "CMakeFiles/rll_baselines.dir/relation.cc.o.d"
  "CMakeFiles/rll_baselines.dir/rll_method.cc.o"
  "CMakeFiles/rll_baselines.dir/rll_method.cc.o.d"
  "CMakeFiles/rll_baselines.dir/siamese.cc.o"
  "CMakeFiles/rll_baselines.dir/siamese.cc.o.d"
  "CMakeFiles/rll_baselines.dir/softprob.cc.o"
  "CMakeFiles/rll_baselines.dir/softprob.cc.o.d"
  "CMakeFiles/rll_baselines.dir/triplet.cc.o"
  "CMakeFiles/rll_baselines.dir/triplet.cc.o.d"
  "librll_baselines.a"
  "librll_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
