file(REMOVE_RECURSE
  "CMakeFiles/rll_cli.dir/rll_cli.cc.o"
  "CMakeFiles/rll_cli.dir/rll_cli.cc.o.d"
  "rll_cli"
  "rll_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rll_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
