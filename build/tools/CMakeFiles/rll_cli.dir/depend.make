# Empty dependencies file for rll_cli.
# This may be replaced when dependencies are built.
