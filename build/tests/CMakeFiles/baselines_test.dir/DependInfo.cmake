
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/rll_text.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rll_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rll_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/rll_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/rll_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/rll_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rll_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rll_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rll_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
