# Empty dependencies file for oral_fluency.
# This may be replaced when dependencies are built.
