file(REMOVE_RECURSE
  "CMakeFiles/oral_fluency.dir/oral_fluency.cc.o"
  "CMakeFiles/oral_fluency.dir/oral_fluency.cc.o.d"
  "oral_fluency"
  "oral_fluency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oral_fluency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
