# Empty compiler generated dependencies file for oral_fluency.
# This may be replaced when dependencies are built.
