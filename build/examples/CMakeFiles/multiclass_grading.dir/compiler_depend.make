# Empty compiler generated dependencies file for multiclass_grading.
# This may be replaced when dependencies are built.
