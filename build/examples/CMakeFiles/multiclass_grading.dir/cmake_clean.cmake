file(REMOVE_RECURSE
  "CMakeFiles/multiclass_grading.dir/multiclass_grading.cc.o"
  "CMakeFiles/multiclass_grading.dir/multiclass_grading.cc.o.d"
  "multiclass_grading"
  "multiclass_grading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclass_grading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
