file(REMOVE_RECURSE
  "CMakeFiles/class_quality.dir/class_quality.cc.o"
  "CMakeFiles/class_quality.dir/class_quality.cc.o.d"
  "class_quality"
  "class_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
