# Empty dependencies file for class_quality.
# This may be replaced when dependencies are built.
