# Empty compiler generated dependencies file for oral_text_pipeline.
# This may be replaced when dependencies are built.
