file(REMOVE_RECURSE
  "CMakeFiles/oral_text_pipeline.dir/oral_text_pipeline.cc.o"
  "CMakeFiles/oral_text_pipeline.dir/oral_text_pipeline.cc.o.d"
  "oral_text_pipeline"
  "oral_text_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oral_text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
