file(REMOVE_RECURSE
  "CMakeFiles/similar_retrieval.dir/similar_retrieval.cc.o"
  "CMakeFiles/similar_retrieval.dir/similar_retrieval.cc.o.d"
  "similar_retrieval"
  "similar_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similar_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
