# Empty compiler generated dependencies file for similar_retrieval.
# This may be replaced when dependencies are built.
